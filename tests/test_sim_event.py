"""Tests for the reference simulator itself."""

from __future__ import annotations

import pytest

from repro.faults.model import Fault
from repro.sim.event import ReferenceSimulator
from repro.utils.bitvec import BitVector


class TestReferenceSimulator:
    def test_sequential_rejected(self):
        from repro.circuit.gates import GateType
        from repro.circuit.netlist import Circuit, Gate

        circuit = Circuit("seq", ["a"], ["q"], [Gate("q", GateType.DFF, ("a",))])
        with pytest.raises(ValueError, match="sequential"):
            ReferenceSimulator(circuit)

    def test_pattern_width_checked(self, c17):
        simulator = ReferenceSimulator(c17)
        with pytest.raises(ValueError, match="width"):
            simulator.outputs(BitVector(0, 4))

    def test_node_values_complete(self, mux_circuit):
        simulator = ReferenceSimulator(mux_circuit)
        values = simulator.node_values(BitVector(0b101, 3))
        assert set(values) == set(mux_circuit.nodes)
        assert all(v in (0, 1) for v in values.values())

    def test_mux_semantics(self, mux_circuit):
        simulator = ReferenceSimulator(mux_circuit)
        for value in range(8):
            pattern = BitVector(value, 3)
            a, b, s = pattern.bit(0), pattern.bit(1), pattern.bit(2)
            assert simulator.outputs(pattern).bit(0) == (b if s else a)

    def test_stem_fault_injection(self, tiny_and):
        simulator = ReferenceSimulator(tiny_and)
        pattern = BitVector.from_bits([1, 1])
        assert simulator.outputs(pattern).bit(0) == 1
        assert simulator.outputs(pattern, Fault.stem("y", 0)).bit(0) == 0

    def test_branch_fault_only_affects_target_gate(self, c17):
        simulator = ReferenceSimulator(c17)
        pattern = BitVector.ones(5)
        fault = Fault.branch("3", "11", 0, 0)
        values = simulator.node_values(pattern, fault)
        # gate 10 = NAND(1, 3) still sees the true value of net 3
        assert values["10"] == 0  # NAND(1,1) = 0
        # gate 11 = NAND(3, 6) sees the stuck 0 on its pin 0
        assert values["11"] == 1  # NAND(0,1) = 1

    def test_fault_on_pi_net(self, tiny_and):
        simulator = ReferenceSimulator(tiny_and)
        pattern = BitVector.from_bits([0, 1])
        assert simulator.detects(pattern, Fault.stem("a", 1))

    def test_detects_requires_observation(self, mux_circuit):
        simulator = ReferenceSimulator(mux_circuit)
        # s=1 selects b; a's value is unobservable
        pattern = BitVector.from_bits([0, 1, 1])
        assert not simulator.detects(pattern, Fault.stem("a", 1))

    def test_detected_set(self, tiny_and):
        simulator = ReferenceSimulator(tiny_and)
        patterns = [BitVector(v, 2) for v in range(4)]
        faults = [Fault.stem("y", 0), Fault.stem("y", 1)]
        assert simulator.detected_set(patterns, faults) == set(faults)
