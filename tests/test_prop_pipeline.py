"""End-to-end property tests: the whole reseeding flow on random circuits.

These are the strongest integration checks in the suite: for arbitrary
(small) generated circuits and every TPG family, the pipeline must
produce a covering, trimmed, verifiable solution, and the covering
stages must stay mutually consistent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.faults.collapse import collapse_faults
from repro.flow.pipeline import PipelineConfig, ReseedingPipeline
from repro.reseeding.uniform import uniformize_solution
from repro.sim.fault import FaultSimulator
from repro.tpg.registry import make_tpg

_circuits = st.builds(
    generate_circuit,
    st.builds(
        GeneratorSpec,
        name=st.just("e2e"),
        n_inputs=st.integers(min_value=4, max_value=9),
        n_outputs=st.integers(min_value=2, max_value=4),
        n_gates=st.integers(min_value=10, max_value=45),
        seed=st.integers(min_value=0, max_value=2**31),
    ),
)

_tpg_names = st.sampled_from(["adder", "subtracter", "multiplier", "mp-lfsr"])


@settings(max_examples=12, deadline=None)
@given(circuit=_circuits, tpg_name=_tpg_names, length=st.sampled_from([4, 16]))
def test_pipeline_end_to_end_invariants(circuit, tpg_name, length):
    config = PipelineConfig(
        evolution_length=length, max_random_patterns=256
    )
    result = ReseedingPipeline(circuit, tpg_name, config).run()

    # 1. the final solution covers F completely (independent fault sim)
    simulator = FaultSimulator(circuit)
    tpg = make_tpg(tpg_name, circuit.n_inputs)
    patterns = result.trimmed.solution.patterns(tpg)
    assert simulator.fault_coverage(patterns, result.atpg.target_faults) == 1.0

    # 2. covering accounting is consistent
    assert result.n_triplets == result.n_necessary + result.n_from_solver
    assert result.n_triplets <= result.initial.n_triplets
    assert result.initial.n_triplets == result.atpg.test_length

    # 3. trimming bounds
    assert result.trimmed.undetected == ()
    for triplet in result.trimmed.solution.triplets:
        assert 1 <= triplet.length <= length
    assert sum(result.trimmed.delta_coverage) == len(result.atpg.target_faults)

    # 4. the uniform-T refinement keeps coverage
    uniform = uniformize_solution(result.trimmed)
    uniform_patterns = uniform.solution.patterns(tpg)
    assert (
        simulator.fault_coverage(uniform_patterns, result.atpg.target_faults)
        == 1.0
    )

    # 5. the ATPG fault classification partitions the collapsed universe
    universe = collapse_faults(circuit)
    classified = (
        len(result.atpg.target_faults)
        + len(result.atpg.untestable)
        + len(result.atpg.aborted)
    )
    assert classified == len(universe)


@settings(max_examples=8, deadline=None)
@given(circuit=_circuits)
def test_pipeline_optimality_against_brute_force(circuit):
    """On tiny instances the covering solution must equal the brute-force
    minimum over the candidate pool."""
    import itertools

    config = PipelineConfig(evolution_length=8, max_random_patterns=256)
    result = ReseedingPipeline(circuit, "adder", config).run()
    matrix = result.detection_matrix.matrix  # (triplets, faults) bools
    n_rows = matrix.shape[0]
    if n_rows > 12:
        return  # brute force would blow up; invariants checked elsewhere
    best = None
    for size in range(n_rows + 1):
        for combo in itertools.combinations(range(n_rows), size):
            if matrix[list(combo), :].any(axis=0).all():
                best = size
                break
        if best is not None:
            break
    assert result.n_triplets == best
