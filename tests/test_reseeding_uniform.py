"""Tests for the uniform-T (shared evolution length) refinement."""

from __future__ import annotations


from repro.atpg.engine import AtpgEngine
from repro.circuits import load_circuit
from repro.reseeding import (
    ReseedingSolution,
    Triplet,
    TrimmedSolution,
    storage_comparison,
    trim_solution,
    uniformize_solution,
)
from repro.sim.fault import FaultSimulator
from repro.tpg import AdderAccumulator
from repro.utils.bitvec import BitVector


def _trimmed(lengths):
    triplets = [
        Triplet(BitVector(i, 8), BitVector(1, 8), length)
        for i, length in enumerate(lengths)
    ]
    return TrimmedSolution(
        ReseedingSolution.from_list(triplets),
        tuple(1 for _ in lengths),
        (),
    )


class TestUniformize:
    def test_shared_length_is_max(self):
        uniform = uniformize_solution(_trimmed([3, 9, 5]))
        assert uniform.shared_length == 9
        assert all(t.length == 9 for t in uniform.solution.triplets)

    def test_test_length_product(self):
        uniform = uniformize_solution(_trimmed([3, 9, 5]))
        assert uniform.test_length == 3 * 9

    def test_empty_solution(self):
        uniform = uniformize_solution(_trimmed([]))
        assert uniform.n_triplets == 0
        assert uniform.test_length == 0

    def test_storage_bits_single_length_field(self):
        trimmed = _trimmed([3, 9, 5])
        uniform = uniformize_solution(trimmed)
        # per-triplet: 8 (delta) + 8 (sigma); one shared 4-bit field for 9
        assert uniform.storage_bits() == 3 * 16 + 4

    def test_area_saving_vs_variable_t(self):
        """Section 4's claim: dropping per-triplet length fields saves
        ROM bits whenever there is more than one triplet."""
        trimmed = _trimmed([3, 9, 5])
        uniform = uniformize_solution(trimmed)
        comparison = storage_comparison(trimmed, uniform)
        assert comparison["uniform_t_bits"] < comparison["variable_t_bits"]
        # paid for by a longer (or equal) global test
        assert (
            comparison["uniform_t_test_length"]
            >= comparison["variable_t_test_length"]
        )

    def test_coverage_preserved_end_to_end(self):
        """Running every triplet longer can only add patterns, so the
        uniform solution detects everything the trimmed one did."""
        circuit = load_circuit("c17")
        engine = AtpgEngine(circuit, seed=5)
        atpg = engine.run()
        tpg = AdderAccumulator(circuit.n_inputs)
        triplets = [Triplet(p, BitVector(1, 5), 8) for p in atpg.test_set]
        trimmed = trim_solution(
            circuit, tpg, triplets, atpg.target_faults, simulator=engine.simulator
        )
        uniform = uniformize_solution(trimmed)
        simulator = FaultSimulator(circuit)
        patterns = uniform.solution.patterns(tpg)
        assert simulator.fault_coverage(patterns, atpg.target_faults) == 1.0
