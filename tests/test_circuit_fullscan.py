"""Tests for the full-scan transformation."""

from __future__ import annotations

from repro.circuit.bench import parse_bench
from repro.circuit.fullscan import PPO_SUFFIX, full_scan_view, scan_chain_length
from repro.circuit.gates import GateType
from repro.circuits.data import S27_BENCH


def _s27():
    return parse_bench(S27_BENCH, "s27")


class TestFullScan:
    def test_result_is_combinational(self):
        assert not full_scan_view(_s27()).is_sequential()

    def test_dff_outputs_become_inputs(self):
        scan = full_scan_view(_s27())
        for ff in ("G5", "G6", "G7"):
            assert ff in scan.inputs

    def test_dff_data_nets_become_outputs(self):
        scan = full_scan_view(_s27())
        ppos = [o for o in scan.outputs if o.endswith(PPO_SUFFIX)]
        assert len(ppos) == 3
        # each PPO buffers the DFF's data net
        for ppo in ppos:
            gate = scan.gates[ppo]
            assert gate.gtype is GateType.BUF

    def test_original_po_preserved(self):
        scan = full_scan_view(_s27())
        assert "G17" in scan.outputs

    def test_io_counts(self):
        scan = full_scan_view(_s27())
        assert scan.n_inputs == 4 + 3
        assert scan.n_outputs == 1 + 3

    def test_combinational_input_passthrough(self, c17):
        # combinational circuits come back as a copy
        view = full_scan_view(c17)
        assert view.n_inputs == c17.n_inputs
        assert view.n_gates == c17.n_gates

    def test_scan_name_default(self):
        assert full_scan_view(_s27()).name == "s27_scan"
        assert full_scan_view(_s27(), name="s27").name == "s27"

    def test_scan_chain_length(self, c17):
        assert scan_chain_length(_s27()) == 3
        assert scan_chain_length(c17) == 0

    def test_combinational_logic_preserved(self):
        original = _s27()
        scan = full_scan_view(original)
        for name, gate in original.gates.items():
            if gate.gtype is GateType.DFF:
                continue
            assert scan.gates[name].gtype is gate.gtype
            assert scan.gates[name].fanins == gate.fanins
