"""Tests for the shared component registry and its uniform errors."""

from __future__ import annotations

import pytest

from repro.setcover.matrix import CoverMatrix
from repro.setcover.registry import SOLVER_REGISTRY, solver_names
from repro.setcover.solve import solve_cover
from repro.tpg.registry import TPG_REGISTRY, make_tpg
from repro.utils.registry import Registry, UnknownComponentError


class TestRegistry:
    def test_register_and_get(self):
        registry: Registry[type] = Registry("widget")
        registry.register("a", int)
        assert registry.get("a") is int
        assert registry["a"] is int
        assert "a" in registry and "b" not in registry
        assert registry.names() == ["a"]
        assert len(registry) == 1 and list(registry) == ["a"]

    def test_unknown_component_error_is_both_kinds(self):
        registry: Registry[type] = Registry("widget")
        registry.register("gizmo", int)
        with pytest.raises(KeyError):
            registry.get("gadget")
        with pytest.raises(ValueError):
            registry.get("gadget")

    def test_suggestions(self):
        registry: Registry[type] = Registry("widget")
        registry.register("multiplier", int)
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.get("multiplyer")
        assert excinfo.value.suggestions == ["multiplier"]
        assert "did you mean 'multiplier'" in str(excinfo.value)

    def test_error_str_is_plain(self):
        error = UnknownComponentError("widget", "x", ["y"])
        assert str(error).startswith("unknown widget 'x'")


class TestTpgRegistry:
    def test_known_names(self):
        assert {"adder", "subtracter", "multiplier", "lfsr", "mp-lfsr"} <= set(
            TPG_REGISTRY.names()
        )

    def test_make_tpg_suggests_close_name(self):
        with pytest.raises(UnknownComponentError, match="did you mean 'adder'"):
            make_tpg("addr", 8)

    def test_make_tpg_still_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown TPG"):
            make_tpg("quantum", 8)

    def test_custom_registration(self):
        from repro.tpg.lfsr import Lfsr

        TPG_REGISTRY.register("test-only-lfsr", Lfsr)
        try:
            assert make_tpg("test-only-lfsr", 8).width == 8
        finally:
            TPG_REGISTRY._factories.pop("test-only-lfsr")


class TestSolverRegistry:
    def test_known_solvers(self):
        assert solver_names() == ["ilp", "bnb", "grasp", "greedy"]

    def test_solve_cover_rejects_unknown_with_suggestion(self):
        matrix = CoverMatrix.from_row_sets({0: [0, 1], 1: [1, 2], 2: [0, 2]})
        with pytest.raises(UnknownComponentError, match="did you mean 'greedy'"):
            solve_cover(matrix, method="gredy")

    def test_solve_cover_unknown_still_valueerror(self):
        matrix = CoverMatrix.from_row_sets({0: [0, 1], 1: [1, 2], 2: [0, 2]})
        with pytest.raises(ValueError):
            solve_cover(matrix, method="magic")

    def test_all_registered_solvers_usable_via_solve_cover(self):
        matrix = CoverMatrix.from_row_sets({0: [0, 1], 1: [1, 2], 2: [0, 2]})
        for name in SOLVER_REGISTRY.names():
            solution = solve_cover(matrix, method=name)
            assert matrix.validate_solution(solution.selected)
