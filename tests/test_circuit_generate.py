"""Tests for the synthetic circuit generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.circuit.validate import validate_circuit


class TestSpecValidation:
    def test_rejects_zero_inputs(self):
        with pytest.raises(ValueError):
            GeneratorSpec("x", 0, 1, 10)

    def test_rejects_zero_outputs(self):
        with pytest.raises(ValueError):
            GeneratorSpec("x", 3, 0, 10)

    def test_rejects_fewer_gates_than_outputs(self):
        with pytest.raises(ValueError):
            GeneratorSpec("x", 3, 5, 4)

    def test_rejects_tiny_max_fanin(self):
        with pytest.raises(ValueError):
            GeneratorSpec("x", 3, 1, 10, max_fanin=1)


class TestGeneration:
    def test_exact_counts(self):
        spec = GeneratorSpec("x", 10, 4, 50)
        circuit = generate_circuit(spec)
        assert circuit.n_inputs == 10
        assert circuit.n_outputs == 4
        assert circuit.n_gates == 50

    def test_sequential_counts(self):
        spec = GeneratorSpec("x", 10, 4, 50, n_dffs=6)
        circuit = generate_circuit(spec)
        assert circuit.is_sequential()
        assert circuit.n_gates == 56  # 50 logic + 6 DFF

    def test_deterministic(self):
        spec = GeneratorSpec("x", 10, 4, 50, seed=3)
        a = generate_circuit(spec)
        b = generate_circuit(spec)
        assert list(a.gates) == list(b.gates)
        for name in a.gates:
            assert a.gates[name].fanins == b.gates[name].fanins
            assert a.gates[name].gtype is b.gates[name].gtype

    def test_name_changes_structure(self):
        a = generate_circuit(GeneratorSpec("x", 10, 4, 50, seed=3))
        b = generate_circuit(GeneratorSpec("y", 10, 4, 50, seed=3))
        fanins_a = [a.gates[n].fanins for n in sorted(a.gates)]
        fanins_b = [b.gates[n].fanins for n in sorted(b.gates)]
        assert fanins_a != fanins_b

    def test_seed_changes_structure(self):
        a = generate_circuit(GeneratorSpec("x", 10, 4, 50, seed=3))
        b = generate_circuit(GeneratorSpec("x", 10, 4, 50, seed=4))
        fanins_a = [a.gates[n].fanins for n in sorted(a.gates)]
        fanins_b = [b.gates[n].fanins for n in sorted(b.gates)]
        assert fanins_a != fanins_b

    def test_no_dangling_nets(self):
        circuit = generate_circuit(GeneratorSpec("x", 8, 3, 40))
        validate_circuit(circuit, allow_dangling=False)  # raises on dangling

    def test_every_input_used(self):
        circuit = generate_circuit(GeneratorSpec("x", 20, 2, 30))
        for net in circuit.inputs:
            assert circuit.fanouts(net), f"input {net} unused"

    def test_acyclic(self):
        circuit = generate_circuit(GeneratorSpec("x", 8, 3, 60))
        circuit.topo_order()  # raises on cycles

    @settings(max_examples=25, deadline=None)
    @given(
        n_inputs=st.integers(min_value=2, max_value=30),
        n_outputs=st.integers(min_value=1, max_value=8),
        extra_gates=st.integers(min_value=3, max_value=80),
        n_dffs=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_generated_circuits_always_wellformed(
        self, n_inputs, n_outputs, extra_gates, n_dffs, seed
    ):
        spec = GeneratorSpec(
            "h", n_inputs, n_outputs, n_outputs + extra_gates, n_dffs=n_dffs, seed=seed
        )
        circuit = generate_circuit(spec)
        validate_circuit(
            circuit,
            require_combinational=(n_dffs == 0),
            allow_dangling=False,
        )
        assert circuit.n_inputs == n_inputs
        assert circuit.n_outputs == n_outputs
        assert circuit.n_gates == n_outputs + extra_gates + n_dffs
