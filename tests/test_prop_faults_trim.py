"""Property tests: fault collapsing semantics and trimming soundness on
random circuits."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.faults.collapse import equivalence_classes
from repro.faults.model import full_fault_list
from repro.reseeding.triplet import Triplet
from repro.reseeding.trim import trim_solution
from repro.sim.fault import FaultSimulator
from repro.tpg.accumulator import AdderAccumulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

_small_circuits = st.builds(
    generate_circuit,
    st.builds(
        GeneratorSpec,
        name=st.just("fprop"),
        n_inputs=st.integers(min_value=3, max_value=7),
        n_outputs=st.integers(min_value=1, max_value=3),
        n_gates=st.integers(min_value=5, max_value=25),
        seed=st.integers(min_value=0, max_value=2**31),
    ),
)


@settings(max_examples=20, deadline=None)
@given(circuit=_small_circuits)
def test_collapse_classes_semantically_equivalent(circuit):
    """Every pair of faults in an equivalence class has an identical
    detection signature over the exhaustive pattern set."""
    simulator = FaultSimulator(circuit)
    patterns = [
        BitVector(value, circuit.n_inputs)
        for value in range(1 << circuit.n_inputs)
    ]
    for representative, members in equivalence_classes(circuit).items():
        if len(members) == 1:
            continue
        matrix = simulator.detection_matrix(patterns, members)
        first = matrix[:, 0]
        for column in range(1, matrix.shape[1]):
            assert (matrix[:, column] == first).all(), (
                representative,
                members[column],
            )


@settings(max_examples=20, deadline=None)
@given(
    circuit=_small_circuits,
    seed=st.integers(min_value=0, max_value=1000),
    length=st.integers(min_value=1, max_value=12),
)
def test_trim_preserves_detected_set_exactly(circuit, seed, length):
    """Trimming never loses a fault the untrimmed sequence detected and
    never shrinks a triplet below 1 pattern."""
    rng = RngStream(seed, "trim-prop")
    tpg = AdderAccumulator(circuit.n_inputs)
    faults = full_fault_list(circuit)
    triplets = [
        Triplet(BitVector.random(circuit.n_inputs, rng), tpg.suggest_sigma(rng), length)
        for _ in range(5)
    ]
    simulator = FaultSimulator(circuit)
    full_patterns = [p for t in triplets for p in t.test_set(tpg)]
    detected_before = {
        fault
        for fault, hit in zip(faults, simulator.detected(full_patterns, faults))
        if hit
    }
    trimmed = trim_solution(circuit, tpg, triplets, faults, simulator)
    trimmed_patterns = trimmed.solution.patterns(tpg)
    detected_after = {
        fault
        for fault, hit in zip(faults, simulator.detected(trimmed_patterns, faults))
        if hit
    }
    assert detected_after == detected_before
    assert set(trimmed.undetected) == set(faults) - detected_before
    for triplet in trimmed.solution.triplets:
        assert 1 <= triplet.length <= length
