"""Fault-diagnosis subsystem: injection, dictionaries, effect-cause.

The ground-truth loop these tests close: inject a known fault, capture
the fail log, diagnose it, and check the injected fault comes back.
Signature-mode (MISR bisection) tests live in
``test_diagnosis_signature.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import load_circuit
from repro.diagnosis import (
    Candidate,
    FaultDictionary,
    choose_faults,
    diagnose_effect_cause,
    diagnose_multiplet,
    fault_representatives,
    make_fail_log,
    observed_fail_flags,
    parse_fault,
    rank_candidates,
    simulate_with_faults,
)
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault, full_fault_list
from repro.sim.batch import BatchFaultSimulator
from repro.sim.event import ReferenceSimulator
from repro.sim.logic import CompiledCircuit
from repro.utils.bitvec import BitVector, pack_patterns, unpack_words
from repro.utils.rng import RngStream


def _random_patterns(circuit, count, *names):
    rng = RngStream(77, "diagnosis", circuit.name, *names)
    return [BitVector.random(circuit.n_inputs, rng) for _ in range(count)]


# ----------------------------------------------------------------------
# injection (the multi-fault simulator behind every scenario)
# ----------------------------------------------------------------------


class TestInjection:
    @pytest.mark.parametrize("name", ["c17", "s27"])
    def test_single_fault_agrees_with_reference(self, name):
        """One injected fault must reproduce the reference simulator's
        faulty responses bit for bit."""
        circuit = load_circuit(name)
        compiled = CompiledCircuit(circuit)
        reference = ReferenceSimulator(circuit)
        patterns = _random_patterns(circuit, 24, "single")
        for fault in full_fault_list(circuit)[::7]:
            log = make_fail_log(circuit, patterns, fault, compiled)
            expected = [reference.outputs(p, fault) for p in patterns]
            assert log.responses == expected, str(fault)

    def test_double_stem_faults_compose(self, mux_circuit):
        """Two stem faults force both nets on one machine."""
        compiled = CompiledCircuit(mux_circuit)
        faults = (Fault.stem("t0", 1), Fault.stem("t1", 1))
        patterns = _random_patterns(mux_circuit, 8, "double")
        words = simulate_with_faults(
            compiled, pack_patterns(patterns, compiled.n_inputs), faults
        )
        responses = unpack_words(words[compiled.output_ids, :], len(patterns))
        # y = t0 OR t1 with both forced to 1 is constantly 1.
        assert all(r.value == 1 for r in responses)

    def test_two_branches_on_one_gate_force_both_pins(self, mux_circuit):
        """Branch faults grouped per gate: both pins stuck in one
        re-evaluation (y reads t0 and t1 — stuck-0 on both pins pins
        y at 0)."""
        compiled = CompiledCircuit(mux_circuit)
        faults = (
            Fault.branch("t0", "y", 0, 0),
            Fault.branch("t1", "y", 1, 0),
        )
        patterns = _random_patterns(mux_circuit, 16, "branches")
        words = simulate_with_faults(
            compiled, pack_patterns(patterns, compiled.n_inputs), faults
        )
        responses = unpack_words(words[compiled.output_ids, :], len(patterns))
        assert all(r.value == 0 for r in responses)

    def test_branch_fault_reads_faulty_side_inputs(self, c17):
        """A branch-forced gate must read the *faulty* values of its
        other pins when a second fault lies upstream — the case the
        per-fault engines cannot model."""
        from repro.circuit.gates import eval_gate_bool

        compiled = CompiledCircuit(c17)
        patterns = _random_patterns(c17, 32, "pair")
        stem = Fault.stem("10", 1)
        branch = Fault.branch("16", "22", 1, 1)
        log = make_fail_log(c17, patterns, (stem, branch), compiled)
        # Differential oracle: a hand-rolled interpreter that forces
        # both faults at once.
        for pattern, observed in zip(patterns, log.responses):
            values: dict[str, int] = {}
            for net in c17.topo_order():
                if net in c17.inputs:
                    value = pattern.bit(c17.inputs.index(net))
                else:
                    gate = c17.gates[net]
                    fanin_values = [
                        branch.value
                        if (branch.site.gate == net and branch.site.pin == pin)
                        else values[fanin]
                        for pin, fanin in enumerate(gate.fanins)
                    ]
                    value = eval_gate_bool(gate.gtype, fanin_values)
                if stem.site.net == net:
                    value = stem.value
                values[net] = value
            expected = BitVector.from_bits([values[o] for o in c17.outputs])
            assert observed == expected

    def test_stem_freeze_dominates_branch_into_same_gate(self, tiny_and):
        """A stem fault on a gate's output must survive a branch-fault
        re-evaluation of that same gate: the output is stuck no matter
        what the gate reads (regression: the branch re-eval used to
        clobber the freeze)."""
        compiled = CompiledCircuit(tiny_and)
        faults = (Fault.stem("y", 0), Fault.branch("a", "y", 0, 1))
        patterns = [BitVector(v, 2) for v in range(4)]
        words = simulate_with_faults(
            compiled, pack_patterns(patterns, compiled.n_inputs), faults
        )
        responses = unpack_words(words[compiled.output_ids, :], len(patterns))
        assert all(r.value == 0 for r in responses)

    def test_fail_log_records_ground_truth(self, c17):
        patterns = _random_patterns(c17, 8, "log")
        fault = Fault.stem("10", 1)
        log = make_fail_log(c17, patterns, fault)
        assert log.injected == (fault,)
        assert log.n_patterns == 8
        assert log.circuit_name == "c17"


class TestFaultSpecs:
    def test_stem_round_trip(self):
        assert parse_fault("g27/SA0") == Fault.stem("g27", 0)

    def test_branch_round_trip(self):
        fault = Fault.branch("g27", "g28", 1, 1)
        assert parse_fault(str(fault)) == fault

    @pytest.mark.parametrize("spec", ["g27", "g27/SA2", "g27->g28/SA0", ""])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_fault(spec)

    def test_choose_faults_deterministic_and_distinct(self, c17):
        faults = full_fault_list(c17)
        first = choose_faults(faults, 5, RngStream(1, "pick"))
        second = choose_faults(faults, 5, RngStream(1, "pick"))
        assert first == second
        assert len(set(first)) == 5

    def test_choose_faults_rejects_bad_count(self, c17):
        faults = full_fault_list(c17)
        with pytest.raises(ValueError):
            choose_faults(faults, 0, RngStream(1, "pick"))
        with pytest.raises(ValueError):
            choose_faults(faults, len(faults) + 1, RngStream(1, "pick"))


# ----------------------------------------------------------------------
# candidate ranking vocabulary
# ----------------------------------------------------------------------


class TestCandidates:
    def test_score_and_perfection(self):
        perfect = Candidate(Fault.stem("a", 0), 10, 0, 0)
        assert perfect.score == 10 and perfect.is_perfect
        noisy = Candidate(Fault.stem("a", 1), 10, 2, 3)
        assert noisy.score == 5 and not noisy.is_perfect

    def test_rank_order_prefers_response_matches(self):
        base = dict(n_match=5, n_mispredicted=0, n_missed=0)
        weak = Candidate(Fault.stem("a", 0), **base, n_response_match=1)
        strong = Candidate(Fault.stem("b", 0), **base, n_response_match=5)
        assert rank_candidates([weak, strong])[0] is strong

    def test_rank_ties_break_on_fault_order(self):
        one = Candidate(Fault.stem("b", 0), 5, 0, 0)
        two = Candidate(Fault.stem("a", 0), 5, 0, 0)
        assert [c.fault.site.net for c in rank_candidates([one, two])] == ["a", "b"]


# ----------------------------------------------------------------------
# fault dictionaries
# ----------------------------------------------------------------------


class TestFaultDictionary:
    def test_build_matches_streaming(self, c17):
        patterns = _random_patterns(c17, 20, "dict")
        built = FaultDictionary.build(c17, patterns)
        streamed = FaultDictionary.build_streaming(c17, patterns)
        assert built.faults == streamed.faults
        np.testing.assert_array_equal(built.matrix, streamed.matrix)

    def test_lookup_finds_injected_fault(self, mux_circuit):
        patterns = _random_patterns(mux_circuit, 32, "lookup")
        faults = collapse_faults(mux_circuit)
        dictionary = FaultDictionary.build(mux_circuit, patterns, faults)
        simulator = BatchFaultSimulator(mux_circuit)
        detected = simulator.detected(patterns, faults)
        target = next(f for f, flag in zip(faults, detected) if flag)
        log = make_fail_log(mux_circuit, patterns, target)
        golden = simulator.compiled.simulate_patterns(patterns)
        flags = observed_fail_flags(golden, log.responses)
        result = dictionary.diagnose(flags, top_k=3)
        assert result.mode == "dictionary"
        assert result.patterns_resimulated == 0
        top = result.candidates[0]
        assert top.is_perfect
        assert top.n_match == int(flags.sum())

    def test_serialization_round_trip(self, c17):
        patterns = _random_patterns(c17, 12, "serialize")
        dictionary = FaultDictionary.build(c17, patterns)
        clone = FaultDictionary.from_dict(dictionary.to_dict())
        assert clone.circuit_name == dictionary.circuit_name
        assert clone.faults == dictionary.faults
        np.testing.assert_array_equal(clone.matrix, dictionary.matrix)

    def test_packed_compression(self, c17):
        patterns = _random_patterns(c17, 64, "packed")
        dictionary = FaultDictionary.build(c17, patterns)
        dense = dictionary.n_patterns * dictionary.n_faults
        assert dictionary.packed_bytes <= dense // 8 + 1

    def test_shape_validation(self, c17):
        patterns = _random_patterns(c17, 8, "shape")
        dictionary = FaultDictionary.build(c17, patterns)
        with pytest.raises(ValueError):
            dictionary.lookup(np.zeros(dictionary.n_patterns + 1, dtype=bool))
        with pytest.raises(ValueError):
            FaultDictionary("x", dictionary.faults[:-1], dictionary.matrix)


# ----------------------------------------------------------------------
# effect-cause diagnosis
# ----------------------------------------------------------------------


class TestEffectCause:
    @pytest.mark.parametrize("name", ["c17", "s27"])
    def test_injected_fault_ranks_first(self, name):
        circuit = load_circuit(name)
        simulator = BatchFaultSimulator(circuit)
        faults = collapse_faults(circuit)
        patterns = _random_patterns(circuit, 48, "rank")
        representatives = fault_representatives(circuit)
        detected = simulator.detected(patterns, faults)
        for target in [f for f, flag in zip(faults, detected) if flag][::5]:
            log = make_fail_log(circuit, patterns, target, simulator.compiled)
            result = diagnose_effect_cause(
                circuit, patterns, log.responses, faults=faults,
                simulator=simulator, top_k=5,
            )
            top = result.candidates[0]
            assert top.is_perfect, str(target)
            # The injected fault (or a fault indistinguishable from it
            # on this pattern set) leads the ranking.
            rank = result.rank_of(representatives[target])
            assert rank is not None and rank <= 3, str(target)

    def test_clean_log_reports_nothing(self, c17):
        patterns = _random_patterns(c17, 16, "clean")
        golden = CompiledCircuit(c17).simulate_patterns(patterns)
        result = diagnose_effect_cause(c17, patterns, golden)
        assert result.n_failing == 0
        assert result.candidates == []

    def test_length_mismatch_rejected(self, c17):
        patterns = _random_patterns(c17, 4, "len")
        with pytest.raises(ValueError):
            diagnose_effect_cause(c17, patterns, [])

    def test_result_round_trips(self, c17):
        faults = collapse_faults(c17)
        patterns = _random_patterns(c17, 32, "round")
        target = faults[3]
        log = make_fail_log(c17, patterns, target)
        result = diagnose_effect_cause(c17, patterns, log.responses, faults=faults)
        clone = type(result).from_dict(result.to_dict())
        assert [c.fault for c in clone.candidates] == [
            c.fault for c in result.candidates
        ]
        assert clone.mode == result.mode
        assert clone.n_failing == result.n_failing

    @settings(max_examples=30, deadline=None)
    @given(
        circuit_name=st.sampled_from(["c17", "s27"]),
        fault_index=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_patterns=st.integers(min_value=1, max_value=80),
    )
    def test_detected_fault_always_diagnosable(
        self, circuit_name, fault_index, seed, n_patterns
    ):
        """Ground-truth property: whenever the injected fault is
        detected at all, diagnosis surfaces it — either the fault's own
        collapse representative, or a candidate whose predicted fail
        column is identical on this pattern set (a genuinely
        indistinguishable fault)."""
        circuit = load_circuit(circuit_name)
        simulator = BatchFaultSimulator(circuit)
        universe = full_fault_list(circuit)
        target = universe[fault_index % len(universe)]
        rng = RngStream(seed, "prop", circuit_name)
        patterns = [
            BitVector.random(circuit.n_inputs, rng) for _ in range(n_patterns)
        ]
        log = make_fail_log(circuit, patterns, target, simulator.compiled)
        golden = simulator.compiled.simulate_patterns(patterns)
        flags = observed_fail_flags(golden, log.responses)
        if not flags.any():
            return  # undetected: nothing to diagnose
        faults = collapse_faults(circuit)
        representative = fault_representatives(circuit)[target]
        result = diagnose_effect_cause(
            circuit, patterns, log.responses, faults=faults,
            simulator=simulator, top_k=len(faults),
        )
        listed = {c.fault for c in result.candidates}
        if representative in listed:
            return
        true_column = simulator.detection_matrix(patterns, [target])[:, 0]
        twins = [
            c.fault
            for c in result.candidates
            if c.is_perfect
            and np.array_equal(
                simulator.detection_matrix(patterns, [c.fault])[:, 0],
                true_column,
            )
        ]
        assert twins, f"{target} missing and no indistinguishable twin listed"


class TestMultiplet:
    def test_double_fault_explained(self, c17):
        """The greedy multiplet must fully explain a double-fault log
        with at most two consistent candidates."""
        circuit = c17
        simulator = BatchFaultSimulator(circuit)
        faults = collapse_faults(circuit)
        patterns = _random_patterns(circuit, 48, "multiplet")
        pair = (Fault.stem("10", 1), Fault.stem("23", 0))
        log = make_fail_log(circuit, patterns, pair, simulator.compiled)
        result = diagnose_multiplet(
            circuit, patterns, log.responses, faults=faults, simulator=simulator
        )
        assert result.mode == "multiplet"
        assert 1 <= len(result.candidates) <= 2
        golden = simulator.compiled.simulate_patterns(patterns)
        flags = observed_fail_flags(golden, log.responses)
        explained = np.zeros(len(patterns), dtype=bool)
        for candidate in result.candidates:
            explained |= simulator.detection_matrix(patterns, [candidate.fault])[:, 0]
            assert candidate.n_mispredicted == 0
        np.testing.assert_array_equal(explained & flags, flags)

    def test_single_fault_multiplet_is_singleton(self, mux_circuit):
        simulator = BatchFaultSimulator(mux_circuit)
        faults = collapse_faults(mux_circuit)
        patterns = _random_patterns(mux_circuit, 32, "single")
        detected = simulator.detected(patterns, faults)
        target = next(f for f, flag in zip(faults, detected) if flag)
        log = make_fail_log(mux_circuit, patterns, target)
        result = diagnose_multiplet(
            mux_circuit, patterns, log.responses, faults=faults,
            simulator=simulator,
        )
        assert len(result.candidates) == 1
        assert result.candidates[0].is_perfect


# ----------------------------------------------------------------------
# flow integration: stage + session + cache
# ----------------------------------------------------------------------


class TestFlowIntegration:
    def test_stage_registered(self):
        from repro.flow.stages import STAGE_REGISTRY, make_stage

        assert "diagnosis" in STAGE_REGISTRY.names()
        stage = make_stage("diagnosis")
        assert stage.requires == ("fail_log",)
        assert stage.provides == ("diagnosis",)

    def test_stage_requires_fail_log(self, c17):
        from repro.flow.pipeline import PipelineConfig
        from repro.flow.stages import DiagnosisStage, StageContext
        from repro.sim.fault import FaultSimulator

        ctx = StageContext(
            circuit=c17, tpg=None, config=PipelineConfig(),
            simulator=FaultSimulator(c17),
        )
        with pytest.raises(ValueError, match="fail_log"):
            DiagnosisStage().execute(ctx)

    def test_stage_rejects_unknown_method(self):
        from repro.flow.stages import DiagnosisStage

        with pytest.raises(ValueError, match="unknown diagnosis method"):
            DiagnosisStage(method="voodoo")

    def test_session_diagnose_effect_cause(self, tmp_path):
        from repro.flow.session import Session

        session = Session.from_name("c17", scale=1.0, cache=tmp_path)
        faults = collapse_faults(session.circuit)
        patterns = _random_patterns(session.circuit, 32, "session")
        detected = session.simulator.detected(patterns, faults)
        target = next(f for f, flag in zip(faults, detected) if flag)
        log = make_fail_log(session.circuit, patterns, target)
        result = session.diagnose(log, faults=faults, top_k=5)
        assert result.candidates[0].is_perfect
        assert "stage" in result.timings

    def test_session_dictionary_cache_round_trip(self, tmp_path):
        from repro.flow.session import Session

        patterns = _random_patterns(load_circuit("c17"), 24, "cache")
        cold = Session.from_name("c17", cache=tmp_path)
        first = cold.fault_dictionary(patterns)
        assert cold.cache.misses_for("fault_dictionary") == 1
        warm = Session.from_name("c17", cache=tmp_path)
        second = warm.fault_dictionary(patterns)
        assert warm.cache.hits_for("fault_dictionary") == 1
        np.testing.assert_array_equal(first.matrix, second.matrix)
        assert first.faults == second.faults

    def test_session_diagnose_dictionary_method(self, tmp_path):
        from repro.flow.session import Session

        session = Session.from_name("c17", cache=tmp_path)
        faults = collapse_faults(session.circuit)
        patterns = _random_patterns(session.circuit, 32, "dictmethod")
        detected = session.simulator.detected(patterns, faults)
        target = next(f for f, flag in zip(faults, detected) if flag)
        log = make_fail_log(session.circuit, patterns, target)
        result = session.diagnose(log, method="dictionary", faults=faults)
        assert result.mode == "dictionary"
        assert result.candidates[0].is_perfect
        # The dictionary was cached along the way.
        assert session.cache.misses_for("fault_dictionary") == 1
        session.diagnose(log, method="dictionary", faults=faults)
        assert session.cache.hits_for("fault_dictionary") == 1


# ----------------------------------------------------------------------
# vectorised multi-log lookup (the serve layer's batching primitive)
# ----------------------------------------------------------------------


class TestDiagnoseMany:
    def _logs(self, circuit, n_logs, *names):
        patterns = _random_patterns(circuit, 32, *names)
        faults = collapse_faults(circuit)
        simulator = BatchFaultSimulator(circuit)
        detected = simulator.detected(patterns, faults)
        detectable = [f for f, flag in zip(faults, detected) if flag]
        assert len(detectable) >= n_logs
        logs = [
            make_fail_log(circuit, patterns, fault, simulator.compiled)
            for fault in detectable[:n_logs]
        ]
        return patterns, faults, simulator, logs

    def test_matches_serial_diagnose_per_log(self, c17):
        patterns, faults, simulator, logs = self._logs(c17, 6, "many")
        dictionary = FaultDictionary.build(c17, patterns, faults)
        golden = simulator.compiled.simulate_patterns(patterns)
        flags = np.stack(
            [observed_fail_flags(golden, log.responses) for log in logs],
            axis=1,
        )
        batched = dictionary.diagnose_many(flags, top_k=4)
        serial = [
            dictionary.diagnose(flags[:, i], top_k=4)
            for i in range(len(logs))
        ]
        assert len(batched) == len(serial)
        for got, want in zip(batched, serial):
            assert got.to_dict() == want.to_dict()

    def test_single_column_matches_diagnose(self, c17):
        patterns, faults, simulator, logs = self._logs(c17, 1, "one")
        dictionary = FaultDictionary.build(c17, patterns, faults)
        golden = simulator.compiled.simulate_patterns(patterns)
        flags = observed_fail_flags(golden, logs[0].responses)
        (batched,) = dictionary.diagnose_many(flags, top_k=3)
        assert batched.to_dict() == dictionary.diagnose(flags, top_k=3).to_dict()

    def test_per_log_top_k(self, c17):
        patterns, faults, simulator, logs = self._logs(c17, 2, "topk")
        dictionary = FaultDictionary.build(c17, patterns, faults)
        golden = simulator.compiled.simulate_patterns(patterns)
        flags = np.stack(
            [observed_fail_flags(golden, log.responses) for log in logs],
            axis=1,
        )
        first, second = dictionary.diagnose_many(flags, top_k=[2, 5])
        assert len(first.candidates) == 2
        assert len(second.candidates) == 5

    def test_shape_validation(self, c17):
        patterns = _random_patterns(c17, 8, "shape-many")
        dictionary = FaultDictionary.build(c17, patterns)
        with pytest.raises(ValueError):
            dictionary.diagnose_many(
                np.zeros((dictionary.n_patterns + 1, 2), dtype=bool)
            )
        with pytest.raises(ValueError):
            dictionary.diagnose_many(
                np.zeros((dictionary.n_patterns, 2), dtype=bool), top_k=[1]
            )

    def test_session_diagnose_batch_identical_to_serial(self, tmp_path):
        from repro.flow.session import Session

        session = Session.from_name("c17", cache=tmp_path)
        circuit = session.circuit
        patterns_a = _random_patterns(circuit, 24, "batch-a")
        patterns_b = _random_patterns(circuit, 16, "batch-b")
        faults = collapse_faults(circuit)
        detected_a = session.simulator.detected(patterns_a, faults)
        detected_b = session.simulator.detected(patterns_b, faults)
        logs = [
            make_fail_log(circuit, patterns_a, fault, session.simulator.compiled)
            for fault, flag in zip(faults, detected_a)
            if flag
        ][:3] + [
            make_fail_log(circuit, patterns_b, fault, session.simulator.compiled)
            for fault, flag in zip(faults, detected_b)
            if flag
        ][:2]
        assert len(logs) == 5  # two pattern-set groups in one batch
        batched = session.diagnose_batch(logs, method="dictionary", top_k=4)
        serial = [
            session.diagnose(log, method="dictionary", top_k=4) for log in logs
        ]
        for got, want in zip(batched, serial):
            assert got.to_dict() == want.to_dict()

    def test_session_diagnose_batch_non_dictionary_degrades(self, tmp_path):
        from repro.flow.session import Session

        session = Session.from_name("c17", cache=tmp_path)
        circuit = session.circuit
        patterns = _random_patterns(circuit, 24, "batch-ec")
        faults = collapse_faults(circuit)
        detected = session.simulator.detected(patterns, faults)
        target = next(f for f, flag in zip(faults, detected) if flag)
        log = make_fail_log(circuit, patterns, target, session.simulator.compiled)
        (batched,) = session.diagnose_batch(
            [log], method="effect_cause", top_k=3
        )
        serial = session.diagnose(log, method="effect_cause", top_k=3)
        assert [c.fault for c in batched.candidates] == [
            c.fault for c in serial.candidates
        ]

    def test_diagnose_batch_top_k_length_validated(self, tmp_path):
        from repro.flow.session import Session

        session = Session.from_name("c17")
        with pytest.raises(ValueError, match="top_k"):
            session.diagnose_batch([], top_k=[1, 2])

    def test_attach_packed_validates_length(self, c17):
        from repro.utils.bitvec import pack_patterns

        patterns = _random_patterns(c17, 8, "attach")
        faults = collapse_faults(c17)
        simulator = BatchFaultSimulator(c17)
        detected = simulator.detected(patterns, faults)
        target = next(f for f, flag in zip(faults, detected) if flag)
        log = make_fail_log(c17, patterns, target, simulator.compiled)
        packed = log.packed(c17.n_inputs)
        assert log.attach_packed(packed) is log
        short = make_fail_log(
            c17, patterns[:4], target, simulator.compiled
        ).packed(c17.n_inputs)
        with pytest.raises(ValueError, match="packed carries"):
            log.attach_packed(short)
