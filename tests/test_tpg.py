"""Tests for the TPG models."""

from __future__ import annotations

import pytest

from repro.tpg import (
    AdderAccumulator,
    Lfsr,
    MultiPolynomialLfsr,
    MultiplierAccumulator,
    SubtracterAccumulator,
    default_polynomials,
    make_tpg,
    tpg_names,
)
from repro.utils.bitvec import BitVector


class TestBaseSemantics:
    def test_first_pattern_is_delta(self, rng):
        """The paper's tau='0' property: the seed appears first."""
        for name in tpg_names():
            tpg = make_tpg(name, 8)
            delta = BitVector.random(8, rng)
            sigma = tpg.suggest_sigma(rng)
            patterns = tpg.evolve(delta, sigma, 5)
            assert patterns[0] == delta, name

    def test_length_one_reproduces_seed_exactly(self, rng):
        tpg = AdderAccumulator(8)
        delta = BitVector.random(8, rng)
        assert tpg.evolve(delta, BitVector(1, 8), 1) == [delta]

    def test_length_zero_is_empty(self):
        tpg = AdderAccumulator(4)
        assert tpg.evolve(BitVector(0, 4), BitVector(1, 4), 0) == []

    def test_negative_length_rejected(self):
        tpg = AdderAccumulator(4)
        with pytest.raises(ValueError):
            tpg.evolve(BitVector(0, 4), BitVector(1, 4), -1)

    def test_width_mismatch_rejected(self):
        tpg = AdderAccumulator(4)
        with pytest.raises(ValueError, match="width"):
            tpg.evolve(BitVector(0, 5), BitVector(1, 4), 2)
        with pytest.raises(ValueError, match="width"):
            tpg.evolve(BitVector(0, 4), BitVector(1, 5), 2)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            AdderAccumulator(0)

    def test_evolution_deterministic(self, rng):
        tpg = MultiplierAccumulator(8)
        delta = BitVector.random(8, rng)
        sigma = tpg.suggest_sigma(rng)
        assert tpg.evolve(delta, sigma, 20) == tpg.evolve(delta, sigma, 20)


class TestAdder:
    def test_arithmetic_progression(self):
        tpg = AdderAccumulator(8)
        patterns = tpg.evolve(BitVector(10, 8), BitVector(3, 8), 4)
        assert [p.value for p in patterns] == [10, 13, 16, 19]

    def test_wraps_modulo(self):
        tpg = AdderAccumulator(4)
        patterns = tpg.evolve(BitVector(14, 4), BitVector(3, 4), 3)
        assert [p.value for p in patterns] == [14, 1, 4]

    def test_odd_sigma_full_period(self, rng):
        """Odd increment => all 2^n states visited before repetition."""
        tpg = AdderAccumulator(6)
        sigma = tpg.suggest_sigma(rng)
        assert sigma.bit(0) == 1
        patterns = tpg.evolve(BitVector(0, 6), sigma, 64)
        assert len({p.value for p in patterns}) == 64


class TestSubtracter:
    def test_descending_progression(self):
        tpg = SubtracterAccumulator(8)
        patterns = tpg.evolve(BitVector(10, 8), BitVector(3, 8), 4)
        assert [p.value for p in patterns] == [10, 7, 4, 1]

    def test_wraps_below_zero(self):
        tpg = SubtracterAccumulator(4)
        patterns = tpg.evolve(BitVector(1, 4), BitVector(3, 4), 3)
        assert [p.value for p in patterns] == [1, 14, 11]

    def test_mirror_of_adder(self, rng):
        add = AdderAccumulator(8)
        sub = SubtracterAccumulator(8)
        delta = BitVector.random(8, rng)
        sigma = BitVector(5, 8)
        up = add.evolve(delta, sigma, 10)
        down = sub.evolve(up[-1], sigma, 10)
        assert [p.value for p in reversed(up)] == [p.value for p in down]


class TestMultiplier:
    def test_geometric_progression(self):
        tpg = MultiplierAccumulator(8)
        patterns = tpg.evolve(BitVector(3, 8), BitVector(5, 8), 3)
        assert [p.value for p in patterns] == [3, 15, 75]

    def test_suggest_sigma_odd_and_not_one(self, rng):
        tpg = MultiplierAccumulator(8)
        for _ in range(50):
            sigma = tpg.suggest_sigma(rng)
            assert sigma.bit(0) == 1
            assert sigma.value != 1

    def test_even_sigma_collapses_to_zero(self):
        """Documents why suggest_sigma avoids even values."""
        tpg = MultiplierAccumulator(4)
        patterns = tpg.evolve(BitVector(7, 4), BitVector(2, 4), 6)
        assert patterns[-1].value == 0


class TestLfsr:
    def test_nonzero_seed_cycles(self):
        lfsr = Lfsr(4)
        patterns = lfsr.evolve(BitVector(1, 4), BitVector(0, 4), 16)
        values = [p.value for p in patterns]
        assert 0 not in values  # primitive polynomial never reaches 0
        assert len(set(values[:15])) == 15  # maximal period 2^4 - 1

    def test_zero_seed_is_fixed_point(self):
        lfsr = Lfsr(4)
        patterns = lfsr.evolve(BitVector(0, 4), BitVector(0, 4), 5)
        assert all(p.value == 0 for p in patterns)

    def test_bad_taps_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(4, taps=(9,))
        with pytest.raises(ValueError):
            Lfsr(4, taps=())

    def test_default_polynomials_distinct(self):
        bank = default_polynomials(8, count=4)
        assert len(bank) == 4
        assert len(set(bank)) == 4


class TestMultiPolyLfsr:
    def test_sigma_selects_polynomial(self):
        tpg = MultiPolynomialLfsr(8)
        assert tpg.polynomial_for(BitVector(0, 8)) == tpg.polynomials[0]
        assert tpg.polynomial_for(BitVector(1, 8)) == tpg.polynomials[1]

    def test_different_polynomials_different_sequences(self, rng):
        tpg = MultiPolynomialLfsr(8)
        delta = BitVector(0b10110101, 8)
        runs = {
            tuple(p.value for p in tpg.evolve(delta, BitVector(k, 8), 12))
            for k in range(len(tpg.polynomials))
        }
        assert len(runs) > 1

    def test_suggest_sigma_in_bank_range(self, rng):
        tpg = MultiPolynomialLfsr(8)
        for _ in range(20):
            sigma = tpg.suggest_sigma(rng)
            assert sigma.value < len(tpg.polynomials)

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            MultiPolynomialLfsr(8, polynomials=[])


class TestRegistry:
    def test_all_names_construct(self):
        for name in tpg_names():
            tpg = make_tpg(name, 8)
            assert tpg.width == 8

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown TPG"):
            make_tpg("quantum", 8)

    def test_paper_tpgs_registered(self):
        from repro.tpg.registry import PAPER_TPGS

        for name in PAPER_TPGS:
            assert name in tpg_names()
