"""Tests for the sweep orchestrator (grids, cache warm-start, pool)."""

from __future__ import annotations

import pytest

from repro.flow.pipeline import PipelineConfig
from repro.flow.session import ArtifactCache
from repro.flow.sweep import sweep

CONFIG = PipelineConfig(evolution_length=8, max_random_patterns=128)
CIRCUITS = ["c17", "s27"]
TPGS = ["adder", "multiplier"]


@pytest.fixture(scope="module")
def cold_grid():
    return sweep(CIRCUITS, TPGS, configs=[CONFIG])


class TestSweepGrid:
    def test_full_grid_in_deterministic_order(self, cold_grid):
        cells = [(o.circuit, o.tpg, o.config_index) for o in cold_grid]
        assert cells == [
            ("c17", "adder", 0),
            ("c17", "multiplier", 0),
            ("s27", "adder", 0),
            ("s27", "multiplier", 0),
        ]

    def test_nothing_cached_without_cache(self, cold_grid):
        assert cold_grid.n_cached == 0

    def test_get_cell(self, cold_grid):
        outcome = cold_grid.get("s27", "adder")
        assert outcome.circuit == "s27"
        assert outcome.result.tpg_name == "adder"
        with pytest.raises(KeyError):
            cold_grid.get("s27", "lfsr")

    def test_atpg_shared_within_circuit(self, cold_grid):
        a = cold_grid.get("c17", "adder").result
        b = cold_grid.get("c17", "multiplier").result
        assert a.atpg is b.atpg

    def test_evolution_lengths_expand_configs(self):
        grid = sweep(
            ["c17"], ["adder"], base_config=CONFIG, evolution_lengths=[4, 8]
        )
        assert [o.config.evolution_length for o in grid] == [4, 8]
        assert all(
            o.config.max_random_patterns == CONFIG.max_random_patterns
            for o in grid
        )

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep([], ["adder"])
        with pytest.raises(ValueError):
            sweep(["c17"], [])


class TestSweepCache:
    def test_warm_cache_skips_atpg(self, tmp_path, cold_grid):
        """The acceptance scenario: 2 circuits x 2 TPGs, cold then warm —
        the warm sweep must serve every cell from the cache and never
        re-run (nor even re-load) ATPG, asserted via the hit counters."""
        cold_cache = ArtifactCache(tmp_path)
        cold = sweep(CIRCUITS, TPGS, configs=[CONFIG], cache=cold_cache)
        assert cold.n_cached == 0
        assert cold_cache.misses_for("pipeline_result") == 4

        warm_cache = ArtifactCache(tmp_path)
        warm = sweep(CIRCUITS, TPGS, configs=[CONFIG], cache=warm_cache)
        assert warm.n_cached == len(warm) == 4
        assert warm_cache.hits_for("pipeline_result") == 4
        assert warm_cache.misses_for("pipeline_result") == 0
        # ATPG was skipped outright: the cached full results short-circuit
        # before the ATPG artefact is even consulted.
        assert warm_cache.hits_for("atpg_result") == 0
        assert warm_cache.misses_for("atpg_result") == 0
        for a, b in zip(cold, warm):
            assert a.result.n_triplets == b.result.n_triplets
            assert a.result.test_length == b.result.test_length
            assert a.result.selected_triplets == b.result.selected_triplets

    def test_partial_warm_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        sweep(["c17"], ["adder"], configs=[CONFIG], cache=cache)
        grid = sweep(CIRCUITS, TPGS, configs=[CONFIG], cache=ArtifactCache(tmp_path))
        assert grid.n_cached == 1
        assert grid.get("c17", "adder").from_cache

    def test_cache_accepts_plain_path(self, tmp_path):
        sweep(["c17"], ["adder"], configs=[CONFIG], cache=tmp_path)
        grid = sweep(["c17"], ["adder"], configs=[CONFIG], cache=str(tmp_path))
        assert grid.n_cached == 1


class TestSweepParallel:
    def test_process_pool_matches_serial(self, cold_grid):
        grid = sweep(CIRCUITS, TPGS, configs=[CONFIG], workers=2)
        assert len(grid) == len(cold_grid)
        for parallel, serial in zip(grid, cold_grid):
            assert parallel.circuit == serial.circuit
            assert parallel.tpg == serial.tpg
            assert parallel.result.n_triplets == serial.result.n_triplets
            assert parallel.result.test_length == serial.result.test_length
            assert (
                parallel.result.selected_triplets
                == serial.result.selected_triplets
            )

    def test_process_pool_uses_cache_dir(self, tmp_path):
        sweep(CIRCUITS, TPGS, configs=[CONFIG], cache=tmp_path, workers=2)
        warm = sweep(CIRCUITS, TPGS, configs=[CONFIG], cache=tmp_path, workers=2)
        assert warm.n_cached == 4


class TestTradeoffClient:
    def test_tradeoff_unchanged_by_redesign(self):
        """explore_tradeoff, now a sweep client, keeps its contract."""
        from repro.circuits import load_circuit
        from repro.flow.tradeoff import explore_tradeoff

        circuit = load_circuit("c17")
        points = explore_tradeoff(circuit, "adder", [1, 4, 16], config=CONFIG)
        assert [p.evolution_length for p in points] == [1, 4, 16]
        counts = [p.n_triplets for p in points]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_tradeoff_with_cache(self, tmp_path):
        from repro.circuits import load_circuit
        from repro.flow.tradeoff import explore_tradeoff

        circuit = load_circuit("c17")
        cache = ArtifactCache(tmp_path)
        first = explore_tradeoff(
            circuit, "adder", [2, 8], config=CONFIG, cache=cache
        )
        warm_cache = ArtifactCache(tmp_path)
        second = explore_tradeoff(
            circuit, "adder", [2, 8], config=CONFIG, cache=warm_cache
        )
        assert warm_cache.hits_for("pipeline_result") == 2
        assert [p.as_tuple() for p in first] == [p.as_tuple() for p in second]
