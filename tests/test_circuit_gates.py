"""Tests for gate evaluation semantics (scalar and packed)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.circuit.gates import (
    GateType,
    controlling_value,
    eval_gate_bool,
    eval_gate_words,
    inversion_parity,
)

_TRUTH_2IN = {
    GateType.AND: lambda a, b: a & b,
    GateType.NAND: lambda a, b: 1 - (a & b),
    GateType.OR: lambda a, b: a | b,
    GateType.NOR: lambda a, b: 1 - (a | b),
    GateType.XOR: lambda a, b: a ^ b,
    GateType.XNOR: lambda a, b: 1 - (a ^ b),
}


class TestScalarEval:
    @pytest.mark.parametrize("gtype", list(_TRUTH_2IN))
    def test_two_input_truth_tables(self, gtype):
        for a, b in itertools.product((0, 1), repeat=2):
            assert eval_gate_bool(gtype, [a, b]) == _TRUTH_2IN[gtype](a, b)

    def test_not_and_buf(self):
        assert eval_gate_bool(GateType.NOT, [0]) == 1
        assert eval_gate_bool(GateType.NOT, [1]) == 0
        assert eval_gate_bool(GateType.BUF, [1]) == 1

    def test_constants(self):
        assert eval_gate_bool(GateType.CONST0, []) == 0
        assert eval_gate_bool(GateType.CONST1, []) == 1

    def test_wide_gates(self):
        assert eval_gate_bool(GateType.AND, [1, 1, 1, 1]) == 1
        assert eval_gate_bool(GateType.AND, [1, 1, 0, 1]) == 0
        assert eval_gate_bool(GateType.XOR, [1, 1, 1]) == 1

    def test_input_not_evaluable(self):
        with pytest.raises(ValueError):
            eval_gate_bool(GateType.INPUT, [])

    def test_dff_not_evaluable(self):
        with pytest.raises(ValueError):
            eval_gate_bool(GateType.DFF, [0])


class TestPackedEval:
    @pytest.mark.parametrize("gtype", list(_TRUTH_2IN) + [GateType.NOT, GateType.BUF])
    def test_packed_matches_scalar(self, gtype, rng):
        n_fanin = 1 if gtype in (GateType.NOT, GateType.BUF) else 3
        words = [
            np.array([rng.getrandbits(64)], dtype=np.uint64) for _ in range(n_fanin)
        ]
        packed = eval_gate_words(gtype, words)
        for bit in range(64):
            scalar_fanins = [int(w[0]) >> bit & 1 for w in words]
            expected = eval_gate_bool(gtype, scalar_fanins)
            assert (int(packed[0]) >> bit & 1) == expected, f"{gtype} bit {bit}"

    def test_packed_buf_copies(self):
        word = np.array([7], dtype=np.uint64)
        out = eval_gate_words(GateType.BUF, [word])
        out[0] = 0
        assert int(word[0]) == 7

    def test_packed_constants_rejected(self):
        with pytest.raises(ValueError):
            eval_gate_words(GateType.CONST0, [])


class TestGateMetadata:
    def test_controlling_values(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1
        assert controlling_value(GateType.XOR) is None

    def test_inversion_parity(self):
        assert inversion_parity(GateType.NAND) == 1
        assert inversion_parity(GateType.NOR) == 1
        assert inversion_parity(GateType.NOT) == 1
        assert inversion_parity(GateType.XNOR) == 1
        assert inversion_parity(GateType.AND) == 0
        assert inversion_parity(GateType.BUF) == 0

    def test_fanin_ranges(self):
        assert GateType.NOT.max_fanin == 1
        assert GateType.AND.max_fanin is None
        assert GateType.INPUT.min_fanin == 0

    def test_is_source(self):
        assert GateType.INPUT.is_source
        assert GateType.CONST1.is_source
        assert not GateType.AND.is_source
