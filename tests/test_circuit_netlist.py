"""Tests for the Gate/Circuit netlist model."""

from __future__ import annotations

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate


class TestGate:
    def test_fanin_arity_enforced_not(self):
        with pytest.raises(ValueError):
            Gate("g", GateType.NOT, ("a", "b"))

    def test_fanin_arity_enforced_and(self):
        with pytest.raises(ValueError):
            Gate("g", GateType.AND, ())

    def test_wide_and_allowed(self):
        gate = Gate("g", GateType.AND, tuple(f"i{k}" for k in range(8)))
        assert len(gate.fanins) == 8

    def test_gate_is_frozen(self):
        gate = Gate("g", GateType.AND, ("a", "b"))
        with pytest.raises(AttributeError):
            gate.name = "h"


class TestCircuitConstruction:
    def test_duplicate_gate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Circuit(
                "c",
                ["a"],
                ["y"],
                [Gate("y", GateType.BUF, ("a",)), Gate("y", GateType.NOT, ("a",))],
            )

    def test_duplicate_input_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Circuit("c", ["a", "a"], ["a"], [])

    def test_net_driven_twice_rejected(self):
        with pytest.raises(ValueError, match="input and gate output"):
            Circuit("c", ["a"], ["a"], [Gate("a", GateType.CONST0)])

    def test_input_gate_type_rejected_in_gates(self):
        with pytest.raises(ValueError, match="INPUT"):
            Circuit("c", [], ["y"], [Gate("y", GateType.INPUT)])

    def test_node_type_lookup(self, mux_circuit):
        assert mux_circuit.node_type("a") is GateType.INPUT
        assert mux_circuit.node_type("ns") is GateType.NOT
        with pytest.raises(KeyError):
            mux_circuit.node_type("nope")

    def test_counts(self, mux_circuit):
        assert mux_circuit.n_inputs == 3
        assert mux_circuit.n_outputs == 1
        assert mux_circuit.n_gates == 4


class TestTopology:
    def test_topo_order_respects_dependencies(self, mux_circuit):
        order = mux_circuit.topo_order()
        position = {name: i for i, name in enumerate(order)}
        for gate in mux_circuit.gates.values():
            for fanin in gate.fanins:
                assert position[fanin] < position[gate.name]

    def test_topo_order_complete(self, mux_circuit):
        assert sorted(mux_circuit.topo_order()) == sorted(mux_circuit.nodes)

    def test_cycle_detected(self):
        circuit = Circuit(
            "cyc",
            ["a"],
            ["x"],
            [
                Gate("x", GateType.AND, ("a", "y")),
                Gate("y", GateType.BUF, ("x",)),
            ],
        )
        with pytest.raises(ValueError, match="cycle"):
            circuit.topo_order()

    def test_dff_breaks_cycle(self):
        # A sequential loop through a DFF is legal.
        circuit = Circuit(
            "seq",
            ["a"],
            ["x"],
            [
                Gate("x", GateType.AND, ("a", "q")),
                Gate("q", GateType.DFF, ("x",)),
            ],
        )
        order = circuit.topo_order()
        assert set(order) == {"a", "x", "q"}

    def test_fanouts(self, mux_circuit):
        assert set(mux_circuit.fanouts("s")) == {"ns", "t1"}
        assert mux_circuit.fanouts("y") == ()

    def test_levels_and_depth(self, mux_circuit):
        levels = mux_circuit.levels()
        assert levels["a"] == 0
        assert levels["ns"] == 1
        assert levels["t0"] == 2
        assert levels["y"] == 3
        assert mux_circuit.depth() == 3

    def test_output_cone(self, mux_circuit):
        cone = mux_circuit.output_cone("s")
        assert cone == {"s", "ns", "t0", "t1", "y"}

    def test_input_cone(self, mux_circuit):
        cone = mux_circuit.input_cone("t0")
        assert cone == {"t0", "a", "ns", "s"}

    def test_is_sequential(self, mux_circuit, s27_scan):
        assert not mux_circuit.is_sequential()
        assert not s27_scan.is_sequential()  # full-scan view is combinational


class TestStatsAndCopy:
    def test_stats_keys(self, c17):
        stats = c17.stats()
        assert stats["inputs"] == 5
        assert stats["outputs"] == 2
        assert stats["gates"] == 6
        assert stats["n_nand"] == 6
        assert stats["depth"] == 3

    def test_copy_is_structurally_equal_but_independent(self, mux_circuit):
        clone = mux_circuit.copy("clone")
        assert clone.name == "clone"
        assert clone.inputs == mux_circuit.inputs
        assert set(clone.gates) == set(mux_circuit.gates)
        clone.inputs.append("extra")
        assert "extra" not in mux_circuit.inputs

    def test_repr(self, c17):
        assert "c17" in repr(c17)
