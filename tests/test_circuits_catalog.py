"""Tests for the benchmark circuit catalog."""

from __future__ import annotations

import pytest

from repro.circuits import (
    CATALOG,
    PAPER_CIRCUITS,
    CatalogEntry,
    catalog_names,
    load_circuit,
)


class TestCatalogContents:
    def test_paper_circuits_all_in_catalog(self):
        for name in PAPER_CIRCUITS:
            assert name in CATALOG

    def test_embedded_entries_flagged(self):
        assert CATALOG["c17"].embedded
        assert CATALOG["s27"].embedded
        assert not CATALOG["c880"].embedded

    def test_sequential_classification(self):
        assert CATALOG["s1238"].is_sequential
        assert not CATALOG["c880"].is_sequential

    def test_scan_inputs(self):
        entry = CATALOG["s1238"]
        assert entry.scan_inputs == entry.n_inputs + entry.n_dffs

    def test_catalog_names_cover_both_suites(self):
        names = catalog_names()
        assert any(n.startswith("c") for n in names)
        assert any(n.startswith("s") for n in names)


class TestLoadCircuit:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown circuit"):
            load_circuit("c9999")

    def test_embedded_c17_exact(self):
        circuit = load_circuit("c17")
        assert circuit.n_inputs == 5
        assert circuit.n_outputs == 2
        assert circuit.n_gates == 6

    def test_synthetic_matches_real_sizes(self):
        entry = CATALOG["c880"]
        circuit = load_circuit("c880")
        assert circuit.n_inputs == entry.n_inputs
        assert circuit.n_outputs == entry.n_outputs
        assert circuit.n_gates == entry.n_gates

    def test_sequential_loaded_as_full_scan_by_default(self):
        circuit = load_circuit("s1238")
        assert not circuit.is_sequential()
        entry = CATALOG["s1238"]
        assert circuit.n_inputs == entry.scan_inputs

    def test_sequential_raw_view(self):
        circuit = load_circuit("s27", full_scan=False)
        assert circuit.is_sequential()

    def test_scale_reduces_size(self):
        full = load_circuit("s5378")
        small = load_circuit("s5378", scale=0.1)
        assert small.n_gates < full.n_gates
        assert small.n_inputs <= full.n_inputs

    def test_scale_ignored_for_embedded(self):
        assert load_circuit("c17", scale=0.01).n_gates == 6

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            load_circuit("c880", scale=0)

    def test_deterministic_across_loads(self):
        a = load_circuit("c1355")
        b = load_circuit("c1355")
        assert list(a.gates) == list(b.gates)
        for name in a.gates:
            assert a.gates[name].fanins == b.gates[name].fanins

    def test_entry_is_frozen(self):
        with pytest.raises(AttributeError):
            CATALOG["c17"].n_inputs = 99

    def test_catalog_entry_sanity(self):
        for entry in CATALOG.values():
            assert isinstance(entry, CatalogEntry)
            assert entry.n_inputs > 0
            assert entry.n_outputs > 0
            assert entry.n_gates > 0
