"""SharedArtifactStore: sharded layout, corruption tolerance, debris
sweeping, concurrent access, and drop-in Session compatibility."""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.flow.serialize import SCHEMA_VERSION
from repro.flow.session import ArtifactCache, Session
from repro.serve.store import SharedArtifactStore


def _payload(kind: str, **fields):
    return {"schema_version": SCHEMA_VERSION, "kind": kind, **fields}


class TestLayout:
    def test_entries_shard_by_key_prefix(self, tmp_path):
        store = SharedArtifactStore(tmp_path)
        key = ArtifactCache.key("pattern_set", circuit="c17", digest="abc")
        store.put(key, _payload("pattern_set", circuit_name="c17"))
        expected = tmp_path / "objects" / key[:2] / f"{key}.json"
        assert expected.is_file()
        assert store.n_entries() == 1

    def test_round_trip_and_counters(self, tmp_path):
        store = SharedArtifactStore(tmp_path, worker_id="w0")
        key = ArtifactCache.key("pattern_set", digest="x")
        assert store.get(key, "pattern_set") is None
        store.put(key, _payload("pattern_set", circuit_name="c17"))
        payload = store.get(key, "pattern_set")
        assert payload["circuit_name"] == "c17"
        assert store.hits_for("pattern_set") == 1
        assert store.misses_for("pattern_set") == 1

    def test_stats_carry_worker_identity(self, tmp_path):
        store = SharedArtifactStore(tmp_path, worker_id="worker-7")
        stats = store.stats()
        assert stats["worker_id"] == "worker-7"
        assert stats["root"] == str(tmp_path)

    def test_default_worker_id_is_pid_tagged(self, tmp_path):
        store = SharedArtifactStore(tmp_path)
        assert store.worker_id == f"pid-{os.getpid()}"

    def test_two_mounts_share_entries(self, tmp_path):
        writer = SharedArtifactStore(tmp_path, worker_id="writer")
        reader = SharedArtifactStore(tmp_path, worker_id="reader")
        key = ArtifactCache.key("pattern_set", digest="shared")
        writer.put(key, _payload("pattern_set", circuit_name="c17"))
        assert reader.get(key, "pattern_set") is not None
        assert reader.hits_for("pattern_set") == 1
        assert writer.hits_for("pattern_set") == 0  # per-worker counters


class TestCorruptionTolerance:
    def test_truncated_entry_is_corrupt_miss(self, tmp_path):
        store = SharedArtifactStore(tmp_path)
        key = ArtifactCache.key("pattern_set", digest="trunc")
        store.put(key, _payload("pattern_set", circuit_name="c17"))
        store._path(key).write_text('{"schema_version": 2, "ki')
        assert store.get(key, "pattern_set") is None
        assert store.corrupt_for("pattern_set") == 1
        assert store.stats()["corrupt"] == 1

    def test_valid_json_non_dict_is_corrupt_miss(self, tmp_path):
        """The pre-fix crash: ``json.loads`` succeeds, ``check_schema``
        blew up calling ``.get`` on a list/number."""
        store = SharedArtifactStore(tmp_path)
        key = ArtifactCache.key("pattern_set", digest="scalar")
        path = store._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        assert store.get(key, "pattern_set") is None
        assert store.corrupt_for("pattern_set") == 1

    def test_reader_survives_writer_racing(self, tmp_path):
        """Concurrent writers + readers on the same keys: readers only
        ever observe absent or complete entries, never exceptions."""
        store = SharedArtifactStore(tmp_path)
        keys = [
            ArtifactCache.key("pattern_set", digest=f"k{i}") for i in range(4)
        ]
        stop = threading.Event()
        failures: list[BaseException] = []

        def writer():
            local = SharedArtifactStore(tmp_path, worker_id="writer")
            i = 0
            while not stop.is_set():
                local.put(
                    keys[i % 4],
                    _payload("pattern_set", circuit_name="c17", rev=i),
                )
                i += 1

        def reader():
            local = SharedArtifactStore(tmp_path, worker_id="reader")
            while not stop.is_set():
                for key in keys:
                    payload = local.get(key, "pattern_set")
                    assert payload is None or payload["kind"] == "pattern_set"

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(writer) for _ in range(2)]
            futures += [pool.submit(reader) for _ in range(4)]
            time.sleep(0.5)
            stop.set()
            for future in futures:
                try:
                    future.result(timeout=10)
                except BaseException as exc:  # pragma: no cover - diagnostic
                    failures.append(exc)
        assert not failures


class TestTmpDebris:
    def test_put_failure_removes_tmp(self, tmp_path, monkeypatch):
        store = SharedArtifactStore(tmp_path)
        key = ArtifactCache.key("pattern_set", digest="fail")

        def doomed_replace(self, target):
            raise OSError("disk full")

        from pathlib import Path as _Path

        monkeypatch.setattr(_Path, "replace", doomed_replace)
        with pytest.raises(OSError):
            store.put(key, _payload("pattern_set", circuit_name="c17"))
        monkeypatch.undo()
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_unserialisable_payload_leaves_no_tmp(self, tmp_path):
        store = SharedArtifactStore(tmp_path)
        key = ArtifactCache.key("pattern_set", digest="bad")
        with pytest.raises(TypeError):
            store.put(key, {"kind": "pattern_set", "bad": object()})
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_stale_tmp_swept_at_open_but_live_kept(self, tmp_path):
        shard = tmp_path / "objects" / "ab"
        shard.mkdir(parents=True)
        stale = shard / "entry.json.123-0.tmp"
        stale.write_text("partial")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        fresh = shard / "entry.json.456-0.tmp"
        fresh.write_text("in flight")
        store = SharedArtifactStore(tmp_path, stale_tmp_age=3600)
        assert not stale.exists()
        assert fresh.exists()
        assert store.swept_tmp == 1
        assert store.stats()["swept_tmp"] == 1

    def test_tmp_names_are_writer_unique(self, tmp_path):
        store = SharedArtifactStore(tmp_path)
        path = store._path(ArtifactCache.key("pattern_set", digest="u"))
        first, second = store._tmp_path(path), store._tmp_path(path)
        assert first != second
        assert str(os.getpid()) in first.name
        assert first.parent == path.parent  # same fs: replace stays atomic


class TestSessionIntegration:
    def test_session_persists_into_shared_store(self, tmp_path):
        store = SharedArtifactStore(tmp_path, worker_id="w0")
        session = Session.from_name("c17", cache=store)
        session.run("adder")
        assert store.n_entries() >= 2  # atpg_result + pipeline_result
        # A sibling worker mounts the same tree and runs warm.
        sibling = SharedArtifactStore(tmp_path, worker_id="w1")
        warm = Session.from_name("c17", cache=sibling)
        warm.run("adder")
        assert sibling.hits_for("pipeline_result") == 1

    def test_entries_are_valid_schema_stamped_json(self, tmp_path):
        store = SharedArtifactStore(tmp_path)
        session = Session.from_name("c17", cache=store)
        session.run("adder")
        for entry in (tmp_path / "objects").glob("*/*.json"):
            payload = json.loads(entry.read_text())
            assert payload["schema_version"] == SCHEMA_VERSION
            assert entry.name.startswith(entry.parent.name)
