"""Tests for triplets, the Initial Reseeding Builder, the Detection
Matrix and test-length trimming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.engine import AtpgEngine
from repro.circuits import load_circuit
from repro.reseeding import (
    DetectionMatrix,
    InitialReseedingBuilder,
    ReseedingSolution,
    Triplet,
    build_detection_matrix,
    trim_solution,
)
from repro.tpg import AdderAccumulator, make_tpg
from repro.utils.bitvec import BitVector


@pytest.fixture(scope="module")
def c17_atpg():
    circuit = load_circuit("c17")
    engine = AtpgEngine(circuit, seed=5)
    return circuit, engine.run(), engine.simulator


class TestTriplet:
    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Triplet(BitVector(0, 4), BitVector(1, 4), -1)

    def test_test_set_delegates_to_tpg(self):
        triplet = Triplet(BitVector(2, 4), BitVector(1, 4), 3)
        patterns = triplet.test_set(AdderAccumulator(4))
        assert [p.value for p in patterns] == [2, 3, 4]

    def test_with_length(self):
        triplet = Triplet(BitVector(2, 4), BitVector(1, 4), 10)
        assert triplet.with_length(3).length == 3
        assert triplet.with_length(3).delta == triplet.delta

    def test_storage_bits(self):
        triplet = Triplet(BitVector(0, 8), BitVector(0, 8), 64)
        assert triplet.storage_bits() == 8 + 8 + 7  # 64 needs 7 bits

    def test_str_contains_fields(self):
        text = str(Triplet(BitVector(5, 4), BitVector(1, 4), 7))
        assert "0101" in text and "T=7" in text


class TestReseedingSolution:
    def test_aggregates(self):
        triplets = [
            Triplet(BitVector(0, 4), BitVector(1, 4), 5),
            Triplet(BitVector(1, 4), BitVector(1, 4), 7),
        ]
        solution = ReseedingSolution.from_list(triplets)
        assert solution.n_triplets == 2
        assert solution.test_length == 12
        assert len(solution) == 2

    def test_patterns_concatenate_in_order(self):
        tpg = AdderAccumulator(4)
        solution = ReseedingSolution.from_list(
            [
                Triplet(BitVector(0, 4), BitVector(1, 4), 2),
                Triplet(BitVector(8, 4), BitVector(1, 4), 2),
            ]
        )
        assert [p.value for p in solution.patterns(tpg)] == [0, 1, 8, 9]


class TestDetectionMatrix:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            DetectionMatrix([], [], np.zeros((1, 1), dtype=bool))

    def test_build_rows_match_triplet_coverage(self, c17_atpg):
        circuit, atpg, simulator = c17_atpg
        tpg = AdderAccumulator(circuit.n_inputs)
        triplets = [Triplet(p, BitVector(1, 5), 4) for p in atpg.test_set]
        matrix = build_detection_matrix(
            circuit, tpg, triplets, atpg.target_faults, simulator
        )
        # cross-check one row against a direct fault simulation
        row = 0
        expected = simulator.detected(triplets[row].test_set(tpg), atpg.target_faults)
        assert list(matrix.matrix[row]) == expected

    def test_covers_all_faults_detects_gaps(self, c17_atpg):
        circuit, atpg, _ = c17_atpg
        faults = atpg.target_faults
        good = DetectionMatrix(
            [Triplet(BitVector(0, 5), BitVector(1, 5), 1)] * 1,
            faults,
            np.ones((1, len(faults)), dtype=bool),
        )
        assert good.covers_all_faults()
        bad_matrix = np.ones((1, len(faults)), dtype=bool)
        bad_matrix[0, 0] = False
        bad = DetectionMatrix(good.triplets, faults, bad_matrix)
        assert not bad.covers_all_faults()
        assert bad.undetected_faults() == [faults[0]]

    def test_density(self):
        matrix = DetectionMatrix(
            [Triplet(BitVector(0, 2), BitVector(1, 2), 1)],
            [],
            np.zeros((1, 0), dtype=bool),
        )
        assert matrix.density() == 0.0

    def test_triplet_fault_sets(self, c17_atpg):
        circuit, atpg, simulator = c17_atpg
        tpg = AdderAccumulator(circuit.n_inputs)
        triplets = [Triplet(p, BitVector(1, 5), 2) for p in atpg.test_set[:3]]
        matrix = build_detection_matrix(
            circuit, tpg, triplets, atpg.target_faults, simulator
        )
        sets = matrix.triplet_fault_sets()
        assert len(sets) == 3
        for row, fault_set in enumerate(sets):
            assert fault_set == set(np.flatnonzero(matrix.matrix[row]))


class TestInitialReseedingBuilder:
    def test_width_mismatch_rejected(self, c17_atpg):
        circuit, _, _ = c17_atpg
        with pytest.raises(ValueError, match="width"):
            InitialReseedingBuilder(circuit, AdderAccumulator(circuit.n_inputs + 1))

    def test_one_triplet_per_pattern(self, c17_atpg):
        circuit, atpg, simulator = c17_atpg
        builder = InitialReseedingBuilder(
            circuit, AdderAccumulator(circuit.n_inputs), seed=5, simulator=simulator
        )
        initial = builder.build_from_atpg(atpg, evolution_length=8)
        assert initial.n_triplets == atpg.test_length
        for triplet, pattern in zip(initial.triplets, atpg.test_set):
            assert triplet.delta == pattern
            assert triplet.length == 8

    def test_initial_matrix_covers_all_faults(self, c17_atpg):
        """The construction invariant: pattern 0 = delta = ATPG pattern,
        so the candidate pool covers F completely."""
        circuit, atpg, simulator = c17_atpg
        for tpg_name in ("adder", "multiplier", "subtracter", "mp-lfsr"):
            builder = InitialReseedingBuilder(
                circuit, make_tpg(tpg_name, circuit.n_inputs), seed=5,
                simulator=simulator,
            )
            initial = builder.build_from_atpg(atpg, evolution_length=4)
            assert initial.detection_matrix.covers_all_faults(), tpg_name

    def test_deterministic_sigmas(self, c17_atpg):
        circuit, atpg, simulator = c17_atpg
        builder = InitialReseedingBuilder(
            circuit, AdderAccumulator(circuit.n_inputs), seed=5, simulator=simulator
        )
        a = builder.build_from_atpg(atpg, evolution_length=4)
        b = builder.build_from_atpg(atpg, evolution_length=4)
        assert a.triplets == b.triplets

    def test_bad_evolution_length(self, c17_atpg):
        circuit, atpg, simulator = c17_atpg
        builder = InitialReseedingBuilder(
            circuit, AdderAccumulator(circuit.n_inputs), seed=5, simulator=simulator
        )
        with pytest.raises(ValueError):
            builder.build_from_atpg(atpg, evolution_length=0)


class TestTrimming:
    def test_trim_preserves_coverage(self, c17_atpg):
        circuit, atpg, simulator = c17_atpg
        tpg = AdderAccumulator(circuit.n_inputs)
        triplets = [Triplet(p, BitVector(1, 5), 16) for p in atpg.test_set]
        trimmed = trim_solution(
            circuit, tpg, triplets, atpg.target_faults, simulator
        )
        assert trimmed.undetected == ()
        patterns = trimmed.solution.patterns(tpg)
        assert simulator.fault_coverage(patterns, atpg.target_faults) == 1.0

    def test_trim_never_lengthens(self, c17_atpg):
        circuit, atpg, simulator = c17_atpg
        tpg = AdderAccumulator(circuit.n_inputs)
        triplets = [Triplet(p, BitVector(1, 5), 16) for p in atpg.test_set]
        trimmed = trim_solution(circuit, tpg, triplets, atpg.target_faults, simulator)
        for before, after in zip(triplets, trimmed.solution.triplets):
            assert after.length <= before.length
            assert after.delta == before.delta

    def test_delta_coverage_sums_to_target(self, c17_atpg):
        circuit, atpg, simulator = c17_atpg
        tpg = AdderAccumulator(circuit.n_inputs)
        triplets = [Triplet(p, BitVector(1, 5), 16) for p in atpg.test_set]
        trimmed = trim_solution(circuit, tpg, triplets, atpg.target_faults, simulator)
        assert sum(trimmed.delta_coverage) == len(atpg.target_faults)

    def test_redundant_trailing_triplet_cut_to_one(self, c17_atpg):
        """A triplet whose faults were all already detected keeps only
        its seed pattern."""
        circuit, atpg, simulator = c17_atpg
        tpg = AdderAccumulator(circuit.n_inputs)
        triplets = [Triplet(p, BitVector(1, 5), 16) for p in atpg.test_set]
        triplets.append(triplets[0])  # duplicate adds nothing at the end
        trimmed = trim_solution(circuit, tpg, triplets, atpg.target_faults, simulator)
        assert trimmed.solution.triplets[-1].length == 1
        assert trimmed.delta_coverage[-1] == 0
