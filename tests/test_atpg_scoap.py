"""Tests for SCOAP testability measures and the SCOAP-guided backtrace."""

from __future__ import annotations

import pytest

from repro.atpg.podem import Podem, PodemStatus
from repro.atpg.scoap import INF, compute_scoap
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.faults.model import full_fault_list


class TestControllability:
    def test_primary_inputs_cost_one(self, c17):
        measures = compute_scoap(c17)
        for net in c17.inputs:
            assert measures.cc0[net] == 1
            assert measures.cc1[net] == 1

    def test_and_gate(self, tiny_and):
        measures = compute_scoap(tiny_and)
        # CC1(y) = CC1(a) + CC1(b) + 1 = 3; CC0(y) = min(CC0) + 1 = 2
        assert measures.cc1["y"] == 3
        assert measures.cc0["y"] == 2

    def test_not_gate_swaps(self):
        circuit = Circuit("inv", ["a"], ["y"], [Gate("y", GateType.NOT, ("a",))])
        measures = compute_scoap(circuit)
        assert measures.cc0["y"] == measures.cc1["a"] + 1
        assert measures.cc1["y"] == measures.cc0["a"] + 1

    def test_nand_gate(self):
        circuit = Circuit(
            "nand", ["a", "b"], ["y"], [Gate("y", GateType.NAND, ("a", "b"))]
        )
        measures = compute_scoap(circuit)
        assert measures.cc0["y"] == 3  # all inputs to 1
        assert measures.cc1["y"] == 2  # one input to 0

    def test_xor_gate(self):
        circuit = Circuit(
            "xor", ["a", "b"], ["y"], [Gate("y", GateType.XOR, ("a", "b"))]
        )
        measures = compute_scoap(circuit)
        # parity-0 needs (0,0) or (1,1): cost 2; parity-1 likewise 2
        assert measures.cc0["y"] == 3
        assert measures.cc1["y"] == 3

    def test_constants(self):
        circuit = Circuit(
            "const",
            ["a"],
            ["y"],
            [Gate("k", GateType.CONST1, ()), Gate("y", GateType.AND, ("a", "k"))],
        )
        measures = compute_scoap(circuit)
        assert measures.cc1["k"] == 1
        assert measures.cc0["k"] >= INF  # cannot drive a CONST1 to 0

    def test_deeper_nets_cost_more(self, c17):
        measures = compute_scoap(c17)
        # outputs sit behind two NAND levels: strictly costlier than PIs
        for output in c17.outputs:
            assert measures.cc0[output] > 1
            assert measures.cc1[output] > 1

    def test_sequential_rejected(self):
        circuit = Circuit("seq", ["a"], ["q"], [Gate("q", GateType.DFF, ("a",))])
        with pytest.raises(ValueError, match="sequential"):
            compute_scoap(circuit)


class TestObservability:
    def test_outputs_cost_zero(self, c17):
        measures = compute_scoap(c17)
        for output in c17.outputs:
            assert measures.co[output] == 0

    def test_and_side_input_cost(self, tiny_and):
        measures = compute_scoap(tiny_and)
        # observing a through AND(a,b): CO(y)=0 + CC1(b) + 1 = 2
        assert measures.co["a"] == 2
        assert measures.co["b"] == 2

    def test_mux_select_observability(self, mux_circuit):
        measures = compute_scoap(mux_circuit)
        # every internal net reaches the single output
        for net in mux_circuit.nodes:
            assert measures.co[net] < INF

    def test_unobservable_dangling_net(self):
        circuit = Circuit(
            "dangling",
            ["a", "b"],
            ["y"],
            [
                Gate("dead", GateType.AND, ("a", "b")),
                Gate("y", GateType.NOT, ("a",)),
            ],
        )
        measures = compute_scoap(circuit)
        assert measures.co["dead"] >= INF

    def test_stem_takes_cheapest_branch(self, c17):
        measures = compute_scoap(c17)
        # net 3 feeds gates 10 and 11; its CO is the min over both paths
        through_10 = measures.co["10"] + measures.cc1["1"] + 1
        through_11 = measures.co["11"] + measures.cc1["6"] + 1
        assert measures.co["3"] == min(through_10, through_11)

    def test_hardest_net_is_finite(self, c17):
        measures = compute_scoap(c17)
        assert measures.hardest_net() in set(c17.nodes)


class TestScoapGuidedPodem:
    def test_heuristic_validated(self, c17):
        with pytest.raises(ValueError, match="heuristic"):
            Podem(c17, heuristic="magic")

    @pytest.mark.parametrize("circuit_name", ["c17", "s27_scan", "mux_circuit"])
    def test_scoap_backtrace_detects_everything(self, circuit_name, request, rng):
        from repro.sim.event import ReferenceSimulator

        circuit = request.getfixturevalue(circuit_name)
        podem = Podem(circuit, heuristic="scoap")
        reference = ReferenceSimulator(circuit)
        for fault in full_fault_list(circuit):
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, str(fault)
            pattern = result.cube.to_pattern(circuit.inputs, rng)
            assert reference.detects(pattern, fault)

    def test_scoap_agrees_with_level_on_redundancy(self, redundant_circuit):
        from repro.faults.model import Fault

        level = Podem(redundant_circuit, heuristic="level")
        scoap = Podem(redundant_circuit, heuristic="scoap")
        fault = Fault.stem("t", 0)
        assert level.generate(fault).status is PodemStatus.UNTESTABLE
        assert scoap.generate(fault).status is PodemStatus.UNTESTABLE
