"""Unit and property tests for repro.utils.bitvec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitvec import (
    BitVector,
    ints_to_bitvectors,
    pack_patterns,
    unpack_words,
)


class TestBitVectorConstruction:
    def test_value_and_width(self):
        v = BitVector(0b1010, 4)
        assert v.value == 10
        assert v.width == 4
        assert len(v) == 4

    def test_value_is_masked_to_width(self):
        assert BitVector(0b11111, 3).value == 0b111

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0, 0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1, 4)

    def test_from_bits_lsb_first(self):
        v = BitVector.from_bits([0, 1, 0, 1])
        assert v.value == 0b1010

    def test_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            BitVector.from_bits([0, 2])

    def test_from_bits_rejects_empty(self):
        with pytest.raises(ValueError):
            BitVector.from_bits([])

    def test_from_string_msb_first(self):
        assert BitVector.from_string("1010").value == 10

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            BitVector.from_string("10x0")

    def test_zeros_and_ones(self):
        assert BitVector.zeros(5).value == 0
        assert BitVector.ones(5).value == 31

    def test_random_respects_width(self, rng):
        for _ in range(50):
            assert BitVector.random(7, rng).value < 128


class TestBitVectorAccess:
    def test_bit_indexing(self):
        v = BitVector(0b0110, 4)
        assert [v[i] for i in range(4)] == [0, 1, 1, 0]

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(0, 4).bit(4)

    def test_bits_roundtrip(self):
        bits = [1, 0, 0, 1, 1]
        assert BitVector.from_bits(bits).bits() == bits

    def test_set_bit(self):
        v = BitVector(0b0000, 4).set_bit(2, 1)
        assert v.value == 0b0100
        assert v.set_bit(2, 0).value == 0

    def test_set_bit_is_nonmutating(self):
        v = BitVector(0, 4)
        v.set_bit(0, 1)
        assert v.value == 0

    def test_popcount(self):
        assert BitVector(0b1011, 4).popcount() == 3

    def test_slice(self):
        v = BitVector(0b110100, 6)
        assert v.slice(2, 3).value == 0b101

    def test_slice_out_of_range(self):
        with pytest.raises(ValueError):
            BitVector(0, 4).slice(2, 4)

    def test_concat_low_bits_first(self):
        low = BitVector(0b01, 2)
        high = BitVector(0b11, 2)
        assert low.concat(high).value == 0b1101

    def test_resized_extends_and_truncates(self):
        v = BitVector(0b101, 3)
        assert v.resized(5).value == 0b101
        assert v.resized(2).value == 0b01

    def test_to_string_msb_first(self):
        assert BitVector(0b0011, 4).to_string() == "0011"


class TestBitVectorArithmetic:
    def test_add_wraps(self):
        a = BitVector(0b1111, 4)
        assert (a + BitVector(1, 4)).value == 0

    def test_sub_wraps(self):
        a = BitVector(0, 4)
        assert (a - BitVector(1, 4)).value == 15

    def test_mul_wraps(self):
        a = BitVector(5, 4)
        assert (a * BitVector(5, 4)).value == 25 % 16

    def test_bitwise_ops(self):
        a, b = BitVector(0b1100, 4), BitVector(0b1010, 4)
        assert (a & b).value == 0b1000
        assert (a | b).value == 0b1110
        assert (a ^ b).value == 0b0110
        assert (~a).value == 0b0011

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0, 4) + BitVector(0, 5)

    def test_equality_requires_width(self):
        assert BitVector(1, 4) != BitVector(1, 5)
        assert BitVector(1, 4) == BitVector(1, 4)

    def test_hashable(self):
        assert len({BitVector(1, 4), BitVector(1, 4), BitVector(2, 4)}) == 2


class TestPacking:
    def test_pack_empty(self):
        assert pack_patterns([], 4).shape == (4, 0)

    def test_pack_single_pattern(self):
        words = pack_patterns([BitVector(0b101, 3)], 3)
        assert words.shape == (3, 1)
        assert int(words[0, 0]) == 1  # bit 0 of pattern 0 -> word bit 0
        assert int(words[1, 0]) == 0
        assert int(words[2, 0]) == 1

    def test_pack_width_mismatch(self):
        with pytest.raises(ValueError):
            pack_patterns([BitVector(0, 3)], 4)

    def test_pack_crosses_word_boundary(self):
        patterns = [BitVector(i & 1, 1) for i in range(70)]
        words = pack_patterns(patterns, 1)
        assert words.shape == (1, 2)
        recovered = unpack_words(words, 70)
        assert recovered == patterns

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=130)
    )
    def test_pack_unpack_roundtrip(self, values):
        patterns = ints_to_bitvectors(values, 8)
        words = pack_patterns(patterns, 8)
        assert unpack_words(words, len(patterns)) == patterns

    def test_words_dtype(self):
        words = pack_patterns([BitVector(1, 2)], 2)
        assert words.dtype == np.uint64
