"""Unit and property tests for repro.utils.bitvec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitvec import (
    BitVector,
    PackedPatterns,
    as_packed,
    ints_to_bitvectors,
    pack_patterns,
    pack_patterns_scalar,
    unpack_words,
    unpack_words_scalar,
)


class TestBitVectorConstruction:
    def test_value_and_width(self):
        v = BitVector(0b1010, 4)
        assert v.value == 10
        assert v.width == 4
        assert len(v) == 4

    def test_value_is_masked_to_width(self):
        assert BitVector(0b11111, 3).value == 0b111

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0, 0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1, 4)

    def test_from_bits_lsb_first(self):
        v = BitVector.from_bits([0, 1, 0, 1])
        assert v.value == 0b1010

    def test_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            BitVector.from_bits([0, 2])

    def test_from_bits_rejects_empty(self):
        with pytest.raises(ValueError):
            BitVector.from_bits([])

    def test_from_string_msb_first(self):
        assert BitVector.from_string("1010").value == 10

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            BitVector.from_string("10x0")

    def test_zeros_and_ones(self):
        assert BitVector.zeros(5).value == 0
        assert BitVector.ones(5).value == 31

    def test_random_respects_width(self, rng):
        for _ in range(50):
            assert BitVector.random(7, rng).value < 128


class TestBitVectorAccess:
    def test_bit_indexing(self):
        v = BitVector(0b0110, 4)
        assert [v[i] for i in range(4)] == [0, 1, 1, 0]

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(0, 4).bit(4)

    def test_bits_roundtrip(self):
        bits = [1, 0, 0, 1, 1]
        assert BitVector.from_bits(bits).bits() == bits

    def test_set_bit(self):
        v = BitVector(0b0000, 4).set_bit(2, 1)
        assert v.value == 0b0100
        assert v.set_bit(2, 0).value == 0

    def test_set_bit_is_nonmutating(self):
        v = BitVector(0, 4)
        v.set_bit(0, 1)
        assert v.value == 0

    def test_popcount(self):
        assert BitVector(0b1011, 4).popcount() == 3

    def test_slice(self):
        v = BitVector(0b110100, 6)
        assert v.slice(2, 3).value == 0b101

    def test_slice_out_of_range(self):
        with pytest.raises(ValueError):
            BitVector(0, 4).slice(2, 4)

    def test_concat_low_bits_first(self):
        low = BitVector(0b01, 2)
        high = BitVector(0b11, 2)
        assert low.concat(high).value == 0b1101

    def test_resized_extends_and_truncates(self):
        v = BitVector(0b101, 3)
        assert v.resized(5).value == 0b101
        assert v.resized(2).value == 0b01

    def test_to_string_msb_first(self):
        assert BitVector(0b0011, 4).to_string() == "0011"


class TestBitVectorArithmetic:
    def test_add_wraps(self):
        a = BitVector(0b1111, 4)
        assert (a + BitVector(1, 4)).value == 0

    def test_sub_wraps(self):
        a = BitVector(0, 4)
        assert (a - BitVector(1, 4)).value == 15

    def test_mul_wraps(self):
        a = BitVector(5, 4)
        assert (a * BitVector(5, 4)).value == 25 % 16

    def test_bitwise_ops(self):
        a, b = BitVector(0b1100, 4), BitVector(0b1010, 4)
        assert (a & b).value == 0b1000
        assert (a | b).value == 0b1110
        assert (a ^ b).value == 0b0110
        assert (~a).value == 0b0011

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0, 4) + BitVector(0, 5)

    def test_equality_requires_width(self):
        assert BitVector(1, 4) != BitVector(1, 5)
        assert BitVector(1, 4) == BitVector(1, 4)

    def test_hashable(self):
        assert len({BitVector(1, 4), BitVector(1, 4), BitVector(2, 4)}) == 2


class TestPacking:
    def test_pack_empty(self):
        assert pack_patterns([], 4).shape == (4, 0)

    def test_pack_single_pattern(self):
        words = pack_patterns([BitVector(0b101, 3)], 3)
        assert words.shape == (3, 1)
        assert int(words[0, 0]) == 1  # bit 0 of pattern 0 -> word bit 0
        assert int(words[1, 0]) == 0
        assert int(words[2, 0]) == 1

    def test_pack_width_mismatch(self):
        with pytest.raises(ValueError):
            pack_patterns([BitVector(0, 3)], 4)

    def test_pack_crosses_word_boundary(self):
        patterns = [BitVector(i & 1, 1) for i in range(70)]
        words = pack_patterns(patterns, 1)
        assert words.shape == (1, 2)
        recovered = unpack_words(words, 70)
        assert recovered == patterns

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=130)
    )
    def test_pack_unpack_roundtrip(self, values):
        patterns = ints_to_bitvectors(values, 8)
        words = pack_patterns(patterns, 8)
        assert unpack_words(words, len(patterns)) == patterns

    def test_words_dtype(self):
        words = pack_patterns([BitVector(1, 2)], 2)
        assert words.dtype == np.uint64


#: Pattern-list strategy over the widths the satellite audit calls out:
#: 1..130 covers sub-byte, byte-, word- and multi-word-wide patterns.
@st.composite
def pattern_lists(draw):
    width = draw(st.integers(min_value=1, max_value=130))
    n_patterns = draw(st.integers(min_value=0, max_value=140))
    rnd = draw(st.randoms(use_true_random=False))
    return [
        BitVector(rnd.getrandbits(width), width) for _ in range(n_patterns)
    ], width


class TestVectorizedScalarDifferential:
    """The vectorized pack/unpack must be bit-identical to the scalar
    reference, including at pattern counts ≢ 0 (mod 64) and widths that
    straddle byte and word boundaries."""

    @given(pattern_lists())
    def test_pack_matches_scalar(self, patterns_width):
        patterns, width = patterns_width
        vectorized = pack_patterns(patterns, width)
        scalar = pack_patterns_scalar(patterns, width)
        assert vectorized.dtype == scalar.dtype == np.uint64
        np.testing.assert_array_equal(vectorized, scalar)

    @given(pattern_lists())
    def test_unpack_matches_scalar_and_roundtrips(self, patterns_width):
        patterns, width = patterns_width
        words = pack_patterns(patterns, width)
        n_patterns = len(patterns)
        assert (
            unpack_words(words, n_patterns)
            == unpack_words_scalar(words, n_patterns)
            == patterns
        )

    @pytest.mark.parametrize("width", [1, 7, 8, 9, 63, 64, 65, 130])
    @pytest.mark.parametrize("n_patterns", [1, 63, 64, 65, 128, 129])
    def test_word_boundary_grid(self, width, n_patterns):
        patterns = [
            BitVector((i * 0x9E3779B97F4A7C15) & ((1 << width) - 1), width)
            for i in range(n_patterns)
        ]
        np.testing.assert_array_equal(
            pack_patterns(patterns, width), pack_patterns_scalar(patterns, width)
        )
        assert unpack_words(pack_patterns(patterns, width), n_patterns) == patterns

    def test_unpack_rejects_overflow(self):
        with pytest.raises(ValueError):
            unpack_words(np.zeros((3, 1), dtype=np.uint64), 65)


class TestPackedPatterns:
    def _patterns(self, n, width=5, seed=99):
        return [
            BitVector((i * 73 + seed) & ((1 << width) - 1), width)
            for i in range(n)
        ]

    def test_from_patterns_and_len(self):
        patterns = self._patterns(70)
        packed = PackedPatterns.from_patterns(patterns, 5)
        assert len(packed) == 70 and packed.width == 5 and packed.n_words == 2
        assert packed.unpack() == patterns

    def test_bool_and_empty(self):
        assert not PackedPatterns.from_patterns([], 4)
        assert PackedPatterns.from_patterns(self._patterns(1), 5)

    def test_tail_mask(self):
        packed = PackedPatterns.from_patterns(self._patterns(65), 5)
        mask = packed.tail_mask()
        assert mask.shape == (2,)
        assert int(mask[0]) == 0xFFFFFFFFFFFFFFFF and int(mask[1]) == 1

    def test_tail_mask_oversize_buffer(self):
        """A buffer with more words than n_patterns needs must mask the
        surplus words to zero, not misplace the tail."""
        packed = PackedPatterns(np.zeros((2, 3), dtype=np.uint64), 10)
        mask = packed.tail_mask()
        assert mask.tolist() == [(1 << 10) - 1, 0, 0]

    @pytest.mark.parametrize(
        "start,stop", [(0, 0), (0, 64), (0, 70), (64, 70), (3, 70), (65, 69), (1, 2)]
    )
    def test_slice_matches_list_slice(self, start, stop):
        patterns = self._patterns(70)
        packed = PackedPatterns.from_patterns(patterns, 5)
        assert packed.slice(start, stop).unpack() == patterns[start:stop]

    @given(
        n=st.integers(0, 140),
        cut=st.tuples(st.integers(0, 140), st.integers(0, 140)),
    )
    def test_slice_property(self, n, cut):
        start, stop = sorted((min(c, n) for c in cut))
        patterns = self._patterns(n, width=9)
        packed = PackedPatterns.from_patterns(patterns, 9)
        assert packed.slice(start, stop).unpack() == patterns[start:stop]

    def test_slice_out_of_range(self):
        packed = PackedPatterns.from_patterns(self._patterns(10), 5)
        with pytest.raises(ValueError):
            packed.slice(3, 11)

    def test_as_packed_passthrough_and_width_check(self):
        packed = PackedPatterns.from_patterns(self._patterns(10), 5)
        assert as_packed(packed, 5) is packed
        with pytest.raises(ValueError):
            as_packed(packed, 6)

    def test_as_packed_packs_sequences(self):
        patterns = self._patterns(10)
        packed = as_packed(patterns, 5)
        np.testing.assert_array_equal(
            packed.words, pack_patterns(patterns, 5)
        )
