"""Tests for essentiality + dominance reduction."""

from __future__ import annotations

import pytest

from repro.setcover.matrix import CoverMatrix
from repro.setcover.reduce import reduce_matrix


class TestEssentiality:
    def test_single_cover_column_makes_row_essential(self):
        # column 0 is only covered by row 0
        matrix = CoverMatrix.from_row_sets({0: {0, 1}, 1: {1, 2}, 2: {2}})
        result = reduce_matrix(matrix)
        assert 0 in result.essential_rows

    def test_essential_row_columns_removed(self):
        matrix = CoverMatrix.from_row_sets({0: {0, 1, 2}, 1: {1}, 2: {2}})
        result = reduce_matrix(matrix)
        # row 0 essential via column 0; its columns disappear, leaving
        # rows 1/2 dominated-empty
        assert result.essential_rows == [0]
        assert result.closed

    def test_cascading_essentials(self):
        # picking row 0 (essential via col 0) leaves col 3 covered only
        # by row 2 -> row 2 becomes essential in the next iteration
        matrix = CoverMatrix.from_row_sets(
            {0: {0, 1}, 1: {1, 3}, 2: {3, 4}, 3: {4}}
        )
        # col0: {0}; col1: {0,1}; col3: {1,2}; col4: {2,3}
        result = reduce_matrix(matrix)
        assert matrix.validate_solution(result.essential_rows) or not result.closed


class TestRowDominance:
    def test_subset_row_removed(self):
        matrix = CoverMatrix.from_row_sets({0: {0, 1}, 1: {0, 1, 2}, 2: {2}})
        result = reduce_matrix(matrix)
        assert 0 in result.dominated_rows

    def test_equal_rows_keep_smallest_id(self):
        matrix = CoverMatrix.from_row_sets({0: {0, 1}, 1: {0, 1}, 2: {0, 1}})
        result = reduce_matrix(matrix)
        assert set(result.dominated_rows) == {1, 2}

    def test_empty_row_removed(self):
        matrix = CoverMatrix.from_row_sets({0: {0}, 1: set()})
        result = reduce_matrix(matrix)
        assert 1 in result.dominated_rows or result.closed


class TestColumnDominance:
    def test_superset_column_removed(self):
        # column 1 is covered by rows {0,1}; column 0 by {0} only:
        # covering col 0 forces col 1 -> col 1 dominated... but col 0
        # also triggers essentiality; use a pure-dominance instance:
        matrix = CoverMatrix.from_row_sets(
            {0: {0, 1, 2}, 1: {0, 1, 3}, 2: {2, 3}}
        )
        # col0: {0,1}, col1: {0,1}, col2: {0,2}, col3: {1,2}
        result = reduce_matrix(matrix)
        # col0 == col1 -> one of them removed (the larger id)
        assert 1 in result.dominated_columns

    def test_strict_superset_removed(self):
        matrix = CoverMatrix.from_row_sets(
            {0: {0, 1}, 1: {1, 2}, 2: {0, 2}}
        )
        # col0: {0,2}, col1: {0,1}, col2: {1,2} — cyclic, nothing dominated
        result = reduce_matrix(matrix)
        assert result.dominated_columns == []
        assert result.core.n_columns == 3


class TestReductionSoundness:
    def test_infeasible_rejected(self):
        matrix = CoverMatrix.from_row_sets({0: {0}}, n_columns=2)
        with pytest.raises(ValueError, match="infeasible"):
            reduce_matrix(matrix)

    def test_input_not_mutated(self):
        matrix = CoverMatrix.from_row_sets({0: {0, 1}, 1: {1}})
        reduce_matrix(matrix)
        assert matrix.shape == (2, 2)

    def test_cyclic_core_untouched(self):
        # the classic 3-row cyclic instance: no essentials, no dominance
        matrix = CoverMatrix.from_row_sets({0: {0, 1}, 1: {1, 2}, 2: {2, 0}})
        result = reduce_matrix(matrix)
        assert result.essential_rows == []
        assert result.core.shape == (3, 3)
        assert not result.closed

    def test_essentials_cover_their_columns(self):
        matrix = CoverMatrix.from_row_sets(
            {0: {0}, 1: {1}, 2: {2}, 3: {0, 1, 2}}
        )
        result = reduce_matrix(matrix)
        # each column has a unique covering row? no — row 3 covers all;
        # col0 covered by {0,3}: no essential; rows 0..2 dominated
        assert set(result.dominated_rows) == {0, 1, 2}
        # then cols all covered only by row 3 -> essential
        assert result.essential_rows == [3]
        assert result.closed

    def test_iterations_counted(self):
        matrix = CoverMatrix.from_row_sets({0: {0}, 1: {1}})
        result = reduce_matrix(matrix)
        assert result.iterations >= 1
