"""Tests for MISR response compaction."""

from __future__ import annotations

import pytest

from repro.faults.model import Fault
from repro.sim.event import ReferenceSimulator
from repro.sim.misr import Misr, aliasing_rate, golden_signature
from repro.utils.bitvec import BitVector


class TestMisrMechanics:
    def test_width_validated(self):
        with pytest.raises(ValueError):
            Misr(0)
        with pytest.raises(ValueError):
            Misr(4, taps=(9,))

    def test_step_width_checked(self):
        misr = Misr(4)
        with pytest.raises(ValueError):
            misr.step(BitVector(0, 4), BitVector(0, 5))

    def test_zero_responses_zero_signature(self):
        misr = Misr(4)
        assert misr.signature([BitVector.zeros(4)] * 10).value == 0

    def test_signature_depends_on_order(self):
        misr = Misr(4)
        a = [BitVector(1, 4), BitVector(2, 4), BitVector(4, 4)]
        b = [BitVector(4, 4), BitVector(2, 4), BitVector(1, 4)]
        assert misr.signature(a) != misr.signature(b)

    def test_signature_deterministic(self, rng):
        misr = Misr(8)
        responses = [BitVector.random(8, rng) for _ in range(20)]
        assert misr.signature(responses) == misr.signature(responses)

    def test_seed_changes_signature(self, rng):
        misr = Misr(8)
        responses = [BitVector.random(8, rng) for _ in range(5)]
        assert misr.signature(responses) != misr.signature(
            responses, seed=BitVector.ones(8)
        )

    def test_linearity(self, rng):
        """MISRs are linear: sig(a xor b) == sig(a) xor sig(b) with a
        zero seed (the property aliasing analysis rests on)."""
        misr = Misr(8)
        a = [BitVector.random(8, rng) for _ in range(12)]
        b = [BitVector.random(8, rng) for _ in range(12)]
        xored = [x ^ y for x, y in zip(a, b)]
        assert misr.signature(xored) == misr.signature(a) ^ misr.signature(b)


class TestSignatureTesting:
    def test_golden_signature_matches_manual(self, c17):
        patterns = [BitVector(v, 5) for v in range(10)]
        misr = Misr(2)
        manual = misr.signature(
            [ReferenceSimulator(c17).outputs(p) for p in patterns]
        )
        assert golden_signature(c17, patterns, misr) == manual

    def test_width_mismatch_rejected(self, c17):
        with pytest.raises(ValueError, match="width"):
            golden_signature(c17, [BitVector(0, 5)], Misr(5))

    def test_faulty_circuit_changes_signature(self, rng):
        """Every detected output fault corrupts the signature of an
        8-bit MISR (aliasing probability ~2^-8; with a handful of faults
        a collision would indicate a real compaction bug)."""
        from repro.circuit.generate import GeneratorSpec, generate_circuit

        circuit = generate_circuit(GeneratorSpec("misr8", 10, 8, 60, seed=11))
        patterns = [BitVector.random(10, rng) for _ in range(48)]
        reference = ReferenceSimulator(circuit)
        misr = Misr(8)
        good_responses = [reference.outputs(p) for p in patterns]
        good_signature = misr.signature(good_responses)
        faults = [Fault.stem(net, v) for net in circuit.outputs for v in (0, 1)]
        for fault in faults:
            bad_responses = [reference.outputs(p, fault) for p in patterns]
            if bad_responses == good_responses:
                continue  # fault not detected by these patterns
            assert misr.signature(bad_responses) != good_signature, str(fault)

    def test_aliasing_rate_bounds(self, rng):
        misr = Misr(4)
        good = [BitVector.random(4, rng) for _ in range(16)]
        corrupted = []
        for _ in range(50):
            run = list(good)
            position = rng.randrange(len(run))
            run[position] = run[position] ^ BitVector(1 << rng.randrange(4), 4)
            corrupted.append(run)
        rate = aliasing_rate(misr, good, corrupted)
        assert 0.0 <= rate <= 1.0
        # single-bit corruptions never alias in a linear MISR
        assert rate == 0.0

    def test_aliasing_rate_empty(self, rng):
        misr = Misr(4)
        assert aliasing_rate(misr, [BitVector.zeros(4)], []) == 0.0

    def test_aliasing_detects_identical_run(self, rng):
        misr = Misr(4)
        good = [BitVector.random(4, rng) for _ in range(8)]
        assert aliasing_rate(misr, good, [list(good)]) == 1.0
