"""Tests for the random phase and static compaction."""

from __future__ import annotations

from repro.atpg.compaction import reverse_order_compaction
from repro.atpg.random_gen import random_phase
from repro.circuits import load_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import full_fault_list
from repro.sim.fault import FaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


class TestRandomPhase:
    def test_kept_patterns_all_useful(self, c17, rng):
        faults = full_fault_list(c17)
        result = random_phase(c17, faults, rng.child("rp"))
        # every kept pattern is credited with >= 1 first detection
        assert set(result.detected) == set(range(len(result.patterns)))
        for faults_detected in result.detected.values():
            assert faults_detected

    def test_no_fault_detected_twice(self, c17, rng):
        faults = full_fault_list(c17)
        result = random_phase(c17, faults, rng.child("rp"))
        credited = result.detected_faults
        assert len(credited) == len(set(credited))

    def test_detected_plus_remaining_is_universe(self, c17, rng):
        faults = full_fault_list(c17)
        result = random_phase(c17, faults, rng.child("rp"))
        assert set(result.detected_faults) | set(result.remaining) == set(faults)
        assert not set(result.detected_faults) & set(result.remaining)

    def test_c17_fully_covered_by_random(self, c17, rng):
        # c17 is easily random-testable
        result = random_phase(c17, full_fault_list(c17), rng.child("rp"))
        assert not result.remaining

    def test_max_patterns_budget_respected(self, rng):
        circuit = load_circuit("c432")
        faults = collapse_faults(circuit)
        result = random_phase(
            circuit, faults, rng.child("rp"), block_size=16, max_patterns=32
        )
        assert len(result.patterns) <= 32

    def test_deterministic_given_stream(self, c17):
        faults = full_fault_list(c17)
        a = random_phase(c17, faults, RngStream(5, "same"))
        b = random_phase(c17, faults, RngStream(5, "same"))
        assert a.patterns == b.patterns

    def test_empty_fault_list(self, c17, rng):
        result = random_phase(c17, [], rng.child("rp"))
        assert result.patterns == []
        assert result.remaining == []


class TestCompaction:
    def test_coverage_preserved(self, c17, rng):
        faults = full_fault_list(c17)
        simulator = FaultSimulator(c17)
        patterns = [BitVector.random(5, rng) for _ in range(60)]
        compacted = reverse_order_compaction(c17, patterns, faults, simulator)
        before = set(
            f for f, hit in zip(faults, simulator.detected(patterns, faults)) if hit
        )
        after = set(
            f for f, hit in zip(faults, simulator.detected(compacted, faults)) if hit
        )
        assert before == after

    def test_never_longer(self, c17, rng):
        faults = full_fault_list(c17)
        patterns = [BitVector.random(5, rng) for _ in range(60)]
        compacted = reverse_order_compaction(c17, patterns, faults)
        assert len(compacted) <= len(patterns)

    def test_duplicates_removed(self, c17):
        faults = full_fault_list(c17)
        pattern = BitVector.ones(5)
        compacted = reverse_order_compaction(c17, [pattern] * 10, faults)
        assert len(compacted) == 1

    def test_relative_order_preserved(self, c17, rng):
        faults = full_fault_list(c17)
        patterns = [BitVector.random(5, rng) for _ in range(40)]
        compacted = reverse_order_compaction(c17, patterns, faults)
        # compacted must be a subsequence of the original list
        iterator = iter(patterns)
        assert all(p in iterator for p in compacted)

    def test_empty_input(self, c17):
        assert reverse_order_compaction(c17, [], full_fault_list(c17)) == []

    def test_useless_patterns_dropped(self, tiny_and):
        from repro.faults.model import Fault

        faults = [Fault.stem("y", 0)]
        useless = BitVector.from_bits([0, 0])
        useful = BitVector.from_bits([1, 1])
        compacted = reverse_order_compaction(tiny_and, [useless, useful], faults)
        assert compacted == [useful]
