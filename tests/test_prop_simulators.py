"""Property-based cross-checks between the packed and reference engines.

The packed simulators (:mod:`repro.sim.logic`, :mod:`repro.sim.fault`)
share no evaluation code with :class:`ReferenceSimulator` beyond the
GateType enum, so agreement on random circuits is strong evidence of
correctness for both.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.faults.model import full_fault_list
from repro.sim.event import ReferenceSimulator
from repro.sim.fault import FaultSimulator
from repro.sim.logic import CompiledCircuit
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

circuits = st.builds(
    generate_circuit,
    st.builds(
        GeneratorSpec,
        name=st.just("prop"),
        n_inputs=st.integers(min_value=2, max_value=10),
        n_outputs=st.integers(min_value=1, max_value=4),
        n_gates=st.integers(min_value=5, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31),
    ),
)


@settings(max_examples=30, deadline=None)
@given(circuit=circuits, pattern_seed=st.integers(min_value=0, max_value=1000))
def test_packed_logic_sim_matches_reference(circuit, pattern_seed):
    rng = RngStream(pattern_seed, "prop-logic")
    patterns = [BitVector.random(circuit.n_inputs, rng) for _ in range(67)]
    compiled = CompiledCircuit(circuit)
    reference = ReferenceSimulator(circuit)
    fast = compiled.simulate_patterns(patterns)
    for pattern, fast_out in zip(patterns, fast):
        assert fast_out == reference.outputs(pattern)


@settings(max_examples=15, deadline=None)
@given(circuit=circuits, pattern_seed=st.integers(min_value=0, max_value=1000))
def test_fault_sim_matches_reference(circuit, pattern_seed):
    rng = RngStream(pattern_seed, "prop-fault")
    patterns = [BitVector.random(circuit.n_inputs, rng) for _ in range(20)]
    faults = full_fault_list(circuit)[:60]
    fast = FaultSimulator(circuit)
    slow = ReferenceSimulator(circuit)
    matrix = fast.detection_matrix(patterns, faults)
    for fault_index, fault in enumerate(faults):
        for pattern_index, pattern in enumerate(patterns):
            assert matrix[pattern_index, fault_index] == slow.detects(
                pattern, fault
            ), f"{fault} on pattern {pattern_index}"


@settings(max_examples=25, deadline=None)
@given(circuit=circuits)
def test_bench_roundtrip_preserves_semantics(circuit):
    reparsed = parse_bench(write_bench(circuit), circuit.name)
    rng = RngStream(99, "prop-bench")
    patterns = [BitVector.random(circuit.n_inputs, rng) for _ in range(16)]
    original_out = CompiledCircuit(circuit).simulate_patterns(patterns)
    reparsed_out = CompiledCircuit(reparsed).simulate_patterns(patterns)
    assert original_out == reparsed_out


@settings(max_examples=15, deadline=None)
@given(circuit=circuits, pattern_seed=st.integers(min_value=0, max_value=1000))
def test_detected_agrees_with_matrix(circuit, pattern_seed):
    """`detected` must equal an any() reduction of `detection_matrix`."""
    rng = RngStream(pattern_seed, "prop-agg")
    patterns = [BitVector.random(circuit.n_inputs, rng) for _ in range(70)]
    faults = full_fault_list(circuit)[:40]
    simulator = FaultSimulator(circuit)
    matrix = simulator.detection_matrix(patterns, faults)
    flags = simulator.detected(patterns, faults)
    for fault_index in range(len(faults)):
        assert flags[fault_index] == bool(matrix[:, fault_index].any())
