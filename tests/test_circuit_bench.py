"""Tests for .bench parsing and writing."""

from __future__ import annotations

import pytest

from repro.circuit.bench import BenchParseError, parse_bench, write_bench
from repro.circuit.gates import GateType
from repro.circuits.data import C17_BENCH, S27_BENCH


class TestParse:
    def test_c17_structure(self):
        circuit = parse_bench(C17_BENCH, "c17")
        assert circuit.n_inputs == 5
        assert circuit.n_outputs == 2
        assert circuit.n_gates == 6
        assert all(g.gtype is GateType.NAND for g in circuit.gates.values())

    def test_s27_is_sequential(self):
        circuit = parse_bench(S27_BENCH, "s27")
        assert circuit.is_sequential()
        n_dffs = sum(1 for g in circuit.gates.values() if g.gtype is GateType.DFF)
        assert n_dffs == 3

    def test_comments_and_blank_lines_ignored(self):
        circuit = parse_bench("# hi\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)  # inline\n")
        assert circuit.n_gates == 1

    def test_buff_alias(self):
        circuit = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert circuit.gates["y"].gtype is GateType.BUF

    def test_case_insensitive_keyword(self):
        circuit = parse_bench("INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n")
        assert circuit.gates["y"].gtype is GateType.NAND

    def test_unknown_gate_keyword(self):
        with pytest.raises(BenchParseError, match="unknown gate type"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_unrecognised_line(self):
        with pytest.raises(BenchParseError, match="unrecognised"):
            parse_bench("INPUT(a)\nwhatever\n")

    def test_undriven_fanin_rejected(self):
        with pytest.raises(ValueError, match="undriven"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_undriven_output_rejected(self):
        with pytest.raises(ValueError, match="not driven"):
            parse_bench("INPUT(a)\nOUTPUT(ghost)\nx = NOT(a)\n")

    def test_error_carries_line_number(self):
        with pytest.raises(BenchParseError) as excinfo:
            parse_bench("INPUT(a)\n???\n")
        assert excinfo.value.line_no == 2

    def test_not_arity_error_reported(self):
        with pytest.raises(BenchParseError, match="takes"):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n")


class TestWrite:
    def test_roundtrip_c17(self):
        original = parse_bench(C17_BENCH, "c17")
        reparsed = parse_bench(write_bench(original), "c17")
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert set(reparsed.gates) == set(original.gates)
        for name, gate in original.gates.items():
            assert reparsed.gates[name].gtype is gate.gtype
            assert reparsed.gates[name].fanins == gate.fanins

    def test_roundtrip_sequential(self):
        original = parse_bench(S27_BENCH, "s27")
        reparsed = parse_bench(write_bench(original), "s27")
        assert reparsed.is_sequential()
        assert set(reparsed.gates) == set(original.gates)

    def test_written_gates_in_topo_order(self):
        original = parse_bench(C17_BENCH, "c17")
        text = write_bench(original)
        seen: set[str] = set(original.inputs)
        for line in text.splitlines():
            if "=" not in line:
                continue
            out, rhs = line.split("=", 1)
            fanins = rhs[rhs.index("(") + 1 : rhs.index(")")].split(",")
            for net in (f.strip() for f in fanins):
                assert net in seen, f"{net} used before defined"
            seen.add(out.strip())
