"""The committed ``BENCH_*.json`` writer: update-only-on-meaningful-delta.

The benchmark documents are committed files; before this contract every
benchmark run rewrote them with pure timing noise, polluting every PR
diff.  These tests load the benchmark conftest directly and pin the
delta semantics: structural or large numeric changes rewrite, noise
within the ratio does not.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_BENCH_CONFTEST = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "conftest.py"
)


@pytest.fixture()
def bench_conftest(monkeypatch, tmp_path):
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test", _BENCH_CONFTEST
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "REPO_ROOT", tmp_path)
    return module


class TestIsTimingNoise:
    def test_identical_documents_are_noise(self, bench_conftest):
        doc = {"schema": 1, "workloads": {"a": {"seconds": 0.5}}}
        assert bench_conftest._is_timing_noise(doc, dict(doc))

    def test_small_numeric_drift_is_noise(self, bench_conftest):
        old = {"seconds": 0.100, "rate": 1000}
        new = {"seconds": 0.140, "rate": 1400}
        assert bench_conftest._is_timing_noise(old, new)

    def test_large_numeric_drift_is_meaningful(self, bench_conftest):
        assert not bench_conftest._is_timing_noise(
            {"seconds": 0.1}, {"seconds": 0.1 * 1.6}
        )

    def test_structure_changes_are_meaningful(self, bench_conftest):
        assert not bench_conftest._is_timing_noise({"a": 1}, {"a": 1, "b": 1})
        assert not bench_conftest._is_timing_noise({"a": 1}, {"b": 1})
        assert not bench_conftest._is_timing_noise({"a": [1]}, {"a": [1, 2]})

    def test_non_numeric_leaves_compare_exactly(self, bench_conftest):
        assert not bench_conftest._is_timing_noise(
            {"circuit": "s420"}, {"circuit": "s1238"}
        )

    def test_zero_only_matches_zero(self, bench_conftest):
        assert bench_conftest._is_timing_noise({"n": 0}, {"n": 0})
        assert not bench_conftest._is_timing_noise({"n": 0}, {"n": 1})
        assert not bench_conftest._is_timing_noise({"n": 1}, {"n": 0})

    def test_sign_flip_is_meaningful(self, bench_conftest):
        assert not bench_conftest._is_timing_noise({"d": -1.0}, {"d": 1.0})

    def test_bool_is_not_a_numeric_leaf(self, bench_conftest):
        assert not bench_conftest._is_timing_noise({"ok": True}, {"ok": False})
        # bool-vs-int must not ratio-match (True ~ 1).
        assert not bench_conftest._is_timing_noise({"ok": True}, {"ok": 1})


class TestWriteBenchJson:
    def test_first_write_creates_file(self, bench_conftest, tmp_path):
        bench_conftest.write_bench_json("BENCH_x.json", {"seconds": 0.5})
        document = json.loads((tmp_path / "BENCH_x.json").read_text())
        assert document == {"schema": 1, "seconds": 0.5}

    def test_noise_rerun_does_not_touch_file(self, bench_conftest, tmp_path):
        path = tmp_path / "BENCH_x.json"
        bench_conftest.write_bench_json("BENCH_x.json", {"seconds": 0.5})
        before = path.stat().st_mtime_ns
        content = path.read_text()
        bench_conftest.write_bench_json("BENCH_x.json", {"seconds": 0.6})
        assert path.stat().st_mtime_ns == before
        assert path.read_text() == content

    def test_meaningful_delta_rewrites(self, bench_conftest, tmp_path):
        path = tmp_path / "BENCH_x.json"
        bench_conftest.write_bench_json("BENCH_x.json", {"seconds": 0.5})
        bench_conftest.write_bench_json("BENCH_x.json", {"seconds": 2.5})
        assert json.loads(path.read_text())["seconds"] == 2.5

    def test_corrupt_previous_document_is_replaced(self, bench_conftest, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        bench_conftest.write_bench_json("BENCH_x.json", {"seconds": 0.5})
        assert json.loads(path.read_text())["schema"] == 1
