"""Tests for the CLI and the solution report."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.flow.pipeline import PipelineConfig, ReseedingPipeline
from repro.flow.report import solution_report
from repro.circuits import load_circuit


class TestCli:
    def test_catalog_lists_circuits(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out
        assert "s15850" in out
        assert "embedded" in out and "synthetic" in out

    def test_run_pipeline(self, capsys):
        assert main(["run", "--circuit", "c17", "--evolution-length", "8"]) == 0
        out = capsys.readouterr().out
        assert "#Triplets=" in out
        assert "Reseeding solution" in out
        assert "Covering statistics" in out

    def test_run_uniform_flag(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--circuit",
                    "c17",
                    "--evolution-length",
                    "8",
                    "--uniform",
                ]
            )
            == 0
        )
        assert "uniform-T refinement" in capsys.readouterr().out

    def test_atpg_command(self, capsys):
        assert main(["atpg", "--circuit", "c17", "--patterns"]) == 0
        out = capsys.readouterr().out
        assert "|TS|=" in out
        # pattern lines are 5-bit binary strings
        assert any(
            len(line) == 5 and set(line) <= {"0", "1"}
            for line in out.splitlines()
        )

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required_arg(self):
        with pytest.raises(SystemExit):
            main(["run"])  # --circuit is required

    def test_parser_has_experiment_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for name in ("table1", "table2", "figure2"):
            assert name in text

    def test_parser_has_sweep_subcommand(self):
        assert "sweep" in build_parser().format_help()

    def test_experiment_delegation_forwards_flags(self, capsys):
        """Flags after `table1`/... must reach the experiment's parser
        (argparse REMAINDER stopped doing this on Python >= 3.11)."""
        assert (
            main(
                [
                    "table1",
                    "--circuits",
                    "c17",
                    "--no-gatsby",
                    "--evolution-length",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "c17" in out and "Table 1" in out


class TestCliDiagnose:
    def test_diagnose_effect_cause_table(self, capsys):
        assert (
            main(
                [
                    "diagnose",
                    "--circuit",
                    "c17",
                    "--patterns",
                    "32",
                    "--top-k",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "candidates (effect_cause)" in out
        assert "ranked #" in out

    def test_diagnose_signature_only(self, capsys):
        assert (
            main(
                [
                    "diagnose",
                    "--circuit",
                    "c17",
                    "--patterns",
                    "64",
                    "--signature-only",
                    "--min-window",
                    "8",
                    "--top-k",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bisection: window [" in out
        assert "oracle queries" in out

    def test_diagnose_explicit_fault_json(self, capsys):
        from repro.diagnosis import DiagnosisResult

        assert (
            main(
                [
                    "diagnose",
                    "--circuit",
                    "c17",
                    "--patterns",
                    "32",
                    "--fault",
                    "10/SA1",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "diagnosis_result"
        assert payload["injected"] == ["10/SA1"]
        # The extra reporting keys do not break round-tripping.
        result = DiagnosisResult.from_dict(payload)
        assert result.circuit_name == "c17"
        rank = payload["injected_ranks"]["10/SA1"]
        assert rank is not None and rank <= 3

    def test_diagnose_dictionary_uses_cache(self, capsys, tmp_path):
        argv = [
            "diagnose",
            "--circuit",
            "c17",
            "--patterns",
            "32",
            "--method",
            "dictionary",
            "--cache",
            str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert list(tmp_path.glob("*.json")), "dictionary not persisted"
        assert main(argv) == 0  # warm run loads it back
        assert "candidates (dictionary)" in capsys.readouterr().out


class TestCliJson:
    def test_catalog_json(self, capsys):
        assert main(["catalog", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in entries}
        assert {"c17", "s27", "s15850"} <= names
        c17 = next(e for e in entries if e["name"] == "c17")
        assert c17["embedded"] is True and c17["gates"] == 6

    def test_run_json_round_trips(self, capsys):
        from repro.flow.pipeline import PipelineResult

        assert (
            main(
                [
                    "run",
                    "--circuit",
                    "c17",
                    "--evolution-length",
                    "8",
                    "--max-random-patterns",
                    "128",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        result = PipelineResult.from_dict(payload)
        assert result.circuit_name == "c17"
        assert result.n_triplets >= 1

    def test_run_exposes_new_knobs(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--circuit",
                    "c17",
                    "--evolution-length",
                    "8",
                    "--max-random-patterns",
                    "64",
                    "--backtrack-limit",
                    "100",
                    "--grasp-iterations",
                    "5",
                    "--json",
                ]
            )
            == 0
        )
        config = json.loads(capsys.readouterr().out)["config"]
        assert config["max_random_patterns"] == 64
        assert config["backtrack_limit"] == 100
        assert config["grasp_iterations"] == 5


class TestCliSweep:
    def test_sweep_table_output(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--circuits",
                    "c17",
                    "s27",
                    "--tpgs",
                    "adder",
                    "--evolution-lengths",
                    "8",
                    "--max-random-patterns",
                    "128",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "c17" in out and "s27" in out
        assert "0/2 cells served from the artifact cache" in out

    def test_sweep_json_with_warm_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--circuits",
            "c17",
            "--tpgs",
            "adder",
            "multiplier",
            "--evolution-lengths",
            "8",
            "--max-random-patterns",
            "128",
            "--cache",
            str(tmp_path),
            "--json",
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert [c["from_cache"] for c in cold["cells"]] == [False, False]
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert [c["from_cache"] for c in warm["cells"]] == [True, True]
        assert warm["cache"]["hits"] == 2
        for a, b in zip(cold["cells"], warm["cells"]):
            assert a["n_triplets"] == b["n_triplets"]
            assert a["test_length"] == b["test_length"]


class TestSolutionReport:
    @pytest.fixture(scope="class")
    def result(self):
        circuit = load_circuit("c17")
        return ReseedingPipeline(
            circuit, "adder", PipelineConfig(evolution_length=8)
        ).run()

    def test_report_sections(self, result):
        report = solution_report(result)
        assert "per-triplet breakdown" in report
        assert "Covering statistics" in report
        assert "ATPG substrate" in report
        assert "Stage timings" in report

    def test_afc_sums_to_100(self, result):
        report = solution_report(result)
        assert "100.0" in report  # cumulative FC reaches 100%

    def test_one_row_per_triplet(self, result):
        report = solution_report(result)
        data_rows = [
            line
            for line in report.splitlines()
            if line.startswith("| ") and "delta" not in line
        ]
        assert len(data_rows) == result.n_triplets


class TestCliTrace:
    """The --trace / `repro trace` surface (acceptance: the span tree
    accounts for >=90% of the command's wall time)."""

    def test_run_trace_covers_wall_time(self, tmp_path, capsys):
        from repro.obs import validate_trace_document

        path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "run",
                    "--circuit", "c17",
                    "--evolution-length", "8",
                    "--trace", str(path),
                ]
            )
            == 0
        )
        document = validate_trace_document(json.loads(path.read_text()))
        (root,) = document["spans"]
        assert root["name"] == "repro.run"
        assert root["attrs"]["circuit"] == "c17"
        child_names = {c["name"] for c in root["children"]}
        assert "session.setup" in child_names
        assert "session.run" in child_names

        def walk(span):
            yield span["name"]
            for child in span["children"]:
                yield from walk(child)

        all_names = set(walk(root))
        # The flow stages appear as descendants of session.run.
        assert {"flow.detection_matrix", "flow.set_cover", "flow.trim"} <= all_names
        covered = sum(c["seconds"] for c in root["children"])
        assert covered >= 0.9 * root["seconds"]

    def test_diagnose_trace_covers_wall_time(self, tmp_path):
        from repro.obs import validate_trace_document

        path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "diagnose",
                    "--circuit", "c17",
                    "--patterns", "16",
                    "--trace", str(path),
                ]
            )
            == 0
        )
        document = validate_trace_document(json.loads(path.read_text()))
        (root,) = document["spans"]
        assert root["name"] == "repro.diagnose"
        covered = sum(c["seconds"] for c in root["children"])
        assert covered >= 0.9 * root["seconds"]
        session_span = next(
            c for c in root["children"] if c["name"] == "session.diagnose"
        )
        assert "flow.diagnosis" in {c["name"] for c in session_span["children"]}

    def test_trace_subcommand_renders_profile(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        main(
            [
                "run",
                "--circuit", "c17",
                "--evolution-length", "8",
                "--trace", str(path),
            ]
        )
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro.run" in out
        assert "share" in out
        assert "flow.detection_matrix" in out

    def test_trace_subcommand_rejects_non_trace_document(self, tmp_path):
        path = tmp_path / "not-a-trace.json"
        path.write_text(json.dumps({"schema_version": 3, "kind": "pipeline_result"}))
        with pytest.raises(Exception):
            main(["trace", str(path)])

    def test_run_without_trace_writes_nothing(self, tmp_path, capsys):
        assert (
            main(["run", "--circuit", "c17", "--evolution-length", "8"]) == 0
        )
        assert list(tmp_path.iterdir()) == []
