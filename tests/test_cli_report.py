"""Tests for the CLI and the solution report."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.flow.pipeline import PipelineConfig, ReseedingPipeline
from repro.flow.report import solution_report
from repro.circuits import load_circuit


class TestCli:
    def test_catalog_lists_circuits(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out
        assert "s15850" in out
        assert "embedded" in out and "synthetic" in out

    def test_run_pipeline(self, capsys):
        assert main(["run", "--circuit", "c17", "--evolution-length", "8"]) == 0
        out = capsys.readouterr().out
        assert "#Triplets=" in out
        assert "Reseeding solution" in out
        assert "Covering statistics" in out

    def test_run_uniform_flag(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--circuit",
                    "c17",
                    "--evolution-length",
                    "8",
                    "--uniform",
                ]
            )
            == 0
        )
        assert "uniform-T refinement" in capsys.readouterr().out

    def test_atpg_command(self, capsys):
        assert main(["atpg", "--circuit", "c17", "--patterns"]) == 0
        out = capsys.readouterr().out
        assert "|TS|=" in out
        # pattern lines are 5-bit binary strings
        assert any(
            len(line) == 5 and set(line) <= {"0", "1"}
            for line in out.splitlines()
        )

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required_arg(self):
        with pytest.raises(SystemExit):
            main(["run"])  # --circuit is required

    def test_parser_has_experiment_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for name in ("table1", "table2", "figure2"):
            assert name in text


class TestSolutionReport:
    @pytest.fixture(scope="class")
    def result(self):
        circuit = load_circuit("c17")
        return ReseedingPipeline(
            circuit, "adder", PipelineConfig(evolution_length=8)
        ).run()

    def test_report_sections(self, result):
        report = solution_report(result)
        assert "per-triplet breakdown" in report
        assert "Covering statistics" in report
        assert "ATPG substrate" in report
        assert "Stage timings" in report

    def test_afc_sums_to_100(self, result):
        report = solution_report(result)
        assert "100.0" in report  # cumulative FC reaches 100%

    def test_one_row_per_triplet(self, result):
        report = solution_report(result)
        data_rows = [
            line
            for line in report.splitlines()
            if line.startswith("| ") and "delta" not in line
        ]
        assert len(data_rows) == result.n_triplets
