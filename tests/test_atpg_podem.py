"""Tests for the PODEM deterministic test generator."""

from __future__ import annotations

import pytest

from repro.atpg.podem import Podem, PodemStatus, TestCube
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.faults.model import Fault, full_fault_list
from repro.sim.event import ReferenceSimulator


def _verify_cube(circuit, fault, cube, rng):
    """A returned cube must detect the fault for *any* X fill."""
    simulator = ReferenceSimulator(circuit)
    for _ in range(4):
        pattern = cube.to_pattern(circuit.inputs, rng)
        assert simulator.detects(pattern, fault), f"{fault} cube {cube} fill failed"


class TestCubeBehaviour:
    def test_to_pattern_respects_assignments(self, rng):
        cube = TestCube.from_dict({"a": 1, "c": 0})
        pattern = cube.to_pattern(["a", "b", "c"], rng)
        assert pattern.bit(0) == 1
        assert pattern.bit(2) == 0

    def test_as_dict_roundtrip(self):
        assignments = {"a": 1, "b": 0}
        assert TestCube.from_dict(assignments).as_dict() == assignments

    def test_n_assigned(self):
        assert TestCube.from_dict({"a": 1}).n_assigned == 1


class TestPodemOnKnownCircuits:
    def test_and_gate_all_faults(self, tiny_and, rng):
        podem = Podem(tiny_and)
        for fault in full_fault_list(tiny_and):
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, str(fault)
            _verify_cube(tiny_and, fault, result.cube, rng)

    def test_c17_all_faults_detected(self, c17, rng):
        podem = Podem(c17)
        for fault in full_fault_list(c17):
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, str(fault)
            _verify_cube(c17, fault, result.cube, rng)

    def test_mux_all_faults(self, mux_circuit, rng):
        podem = Podem(mux_circuit)
        for fault in full_fault_list(mux_circuit):
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, str(fault)
            _verify_cube(mux_circuit, fault, result.cube, rng)

    def test_xor_tree_all_faults(self, xor_tree, rng):
        podem = Podem(xor_tree)
        for fault in full_fault_list(xor_tree):
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, str(fault)
            _verify_cube(xor_tree, fault, result.cube, rng)

    def test_s27_scan_all_faults(self, s27_scan, rng):
        podem = Podem(s27_scan)
        for fault in full_fault_list(s27_scan):
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, str(fault)
            _verify_cube(s27_scan, fault, result.cube, rng)


class TestRedundancy:
    def test_redundant_fault_proved_untestable(self, redundant_circuit):
        # y = a OR (a AND b): t/SA0 cannot change y
        podem = Podem(redundant_circuit)
        result = podem.generate(Fault.stem("t", 0))
        assert result.status is PodemStatus.UNTESTABLE

    def test_testable_faults_of_redundant_circuit(self, redundant_circuit, rng):
        # y = a OR (a AND b) simplifies to y = a, so only faults on the
        # a-to-y path are testable; all b faults are redundant.
        podem = Podem(redundant_circuit)
        for fault in [Fault.stem("y", 0), Fault.stem("y", 1), Fault.stem("a", 0)]:
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, str(fault)
            _verify_cube(redundant_circuit, fault, result.cube, rng)

    def test_unobservable_gate_untestable(self):
        # dead-end logic: g drives nothing (circuit allows it here)
        circuit = Circuit(
            "deadend",
            ["a", "b"],
            ["y"],
            [
                Gate("g", GateType.AND, ("a", "b")),
                Gate("y", GateType.NOT, ("a",)),
            ],
        )
        result = Podem(circuit).generate(Fault.stem("g", 0))
        assert result.status is PodemStatus.UNTESTABLE

    def test_constant_node_stuck_at_same_value_untestable(self):
        circuit = Circuit(
            "const",
            ["a"],
            ["y"],
            [
                Gate("k", GateType.CONST0),
                Gate("y", GateType.OR, ("a", "k")),
            ],
        )
        result = Podem(circuit).generate(Fault.stem("k", 0))
        assert result.status is PodemStatus.UNTESTABLE


class TestBranchFaults:
    def test_branch_fault_detected(self, c17, rng):
        podem = Podem(c17)
        fault = Fault.branch("3", "11", 0, 0)
        result = podem.generate(fault)
        assert result.status is PodemStatus.DETECTED
        _verify_cube(c17, fault, result.cube, rng)

    def test_all_c17_branch_faults(self, c17, rng):
        podem = Podem(c17)
        for fault in full_fault_list(c17):
            if not fault.site.is_branch:
                continue
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, str(fault)
            _verify_cube(c17, fault, result.cube, rng)


class TestErrorsAndLimits:
    def test_unknown_net_rejected(self, c17):
        with pytest.raises(KeyError):
            Podem(c17).generate(Fault.stem("ghost", 0))

    def test_bad_branch_site_rejected(self, c17):
        with pytest.raises(KeyError):
            Podem(c17).generate(Fault.branch("3", "22", 0, 0))

    def test_sequential_circuit_rejected(self):
        circuit = Circuit("seq", ["a"], ["q"], [Gate("q", GateType.DFF, ("a",))])
        with pytest.raises(ValueError, match="sequential"):
            Podem(circuit)

    def test_result_counters_populated(self, c17):
        result = Podem(c17).generate(Fault.stem("22", 0))
        assert result.decisions >= 1
        assert result.backtracks >= 0

    def test_generate_is_reusable(self, c17, rng):
        """One Podem instance must handle many faults back to back."""
        podem = Podem(c17)
        faults = full_fault_list(c17)
        first_pass = [podem.generate(f).status for f in faults]
        second_pass = [podem.generate(f).status for f in faults]
        assert first_pass == second_pass
