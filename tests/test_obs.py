"""The repro.obs telemetry subsystem: metrics, spans, exporters.

Covers the contracts the rest of the repo leans on:

* histogram ``le`` edge semantics (boundary values land in their
  bucket, over-max lands in ``+Inf``, empty histograms render);
* thread safety of instrument increments (the serve worker updates
  from the asyncio loop and the compute executor concurrently);
* scrape-time collectors, including counter aggregation across
  instances and weakref death with the owning object;
* Prometheus text rendering and the strict parser round-trip;
* the span tracer (tree shape, ``record()``, document schema) and the
  ``stage_hook`` bridge from ``StageEvent`` streams;
* ``StageEvent`` backward compatibility (old positional construction).
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.flow.serialize import SCHEMA_VERSION, SchemaMismatchError
from repro.flow.stages import StageEvent
from repro.obs import (
    NULL_REGISTRY,
    NULL_TELEMETRY,
    NULL_TRACER,
    MetricsRegistry,
    Sample,
    Telemetry,
    Tracer,
    metrics_snapshot,
    parse_prometheus_text,
    profile_table,
    render_prometheus,
    stage_hook,
    trace_document,
    validate_trace_document,
)

# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------


class TestInstruments:
    def test_counter_counts_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 5

    def test_registry_returns_same_instrument_for_same_key(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", kind="atpg")
        b = registry.counter("repro_x_total", kind="atpg")
        c = registry.counter("repro_x_total", kind="sim")
        assert a is b
        assert a is not c

    def test_histogram_boundary_value_lands_in_its_bucket(self):
        # Prometheus `le` is less-or-equal: observe(0.01) belongs to the
        # 0.01 bucket, not the next one up.
        hist = MetricsRegistry().histogram("repro_h", buckets=(0.01, 0.1, 1.0))
        hist.observe(0.01)
        snap = hist.snapshot()
        assert snap["counts"] == [1, 0, 0, 0]

    def test_histogram_over_max_lands_in_inf(self):
        hist = MetricsRegistry().histogram("repro_h", buckets=(0.01, 0.1, 1.0))
        hist.observe(5.0)
        snap = hist.snapshot()
        assert snap["counts"] == [0, 0, 0, 1]
        cumulative = hist.cumulative()
        assert cumulative[-1] == (math.inf, 1)

    def test_histogram_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_h", buckets=(0.1, 0.1))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_h", buckets=())

    def test_histogram_quantiles_interpolate(self):
        hist = MetricsRegistry().histogram("repro_h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0
        assert 0.0 < hist.quantile(0.5) <= 2.0
        assert hist.quantile(1.0) <= 4.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_empty_histogram_quantile_is_zero(self):
        hist = MetricsRegistry().histogram("repro_h", buckets=(1.0,))
        assert hist.quantile(0.99) == 0.0

    def test_concurrent_increments_from_threads(self):
        # The serve worker increments from the asyncio loop and from the
        # compute thread; bare `+=` would lose updates under contention.
        registry = MetricsRegistry()
        counter = registry.counter("repro_threads_total")
        hist = registry.histogram("repro_threads_h", buckets=(0.5, 1.0))
        n, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.25)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n * per_thread
        assert hist.count == n * per_thread
        assert hist.snapshot()["counts"][0] == n * per_thread


# ----------------------------------------------------------------------
# Registry: collectors, aggregation, the null variant
# ----------------------------------------------------------------------


class _Kernel:
    """Stand-in for a packed kernel keeping plain int counters."""

    def __init__(self, n: int) -> None:
        self.n = n

    def samples(self):
        return [Sample("repro_kernel_words_total", "counter", (), self.n)]


class TestRegistry:
    def test_collector_samples_are_summed_across_instances(self):
        registry = MetricsRegistry()
        a, b = _Kernel(10), _Kernel(32)
        registry.register_collector(a.samples)
        registry.register_collector(b.samples)
        assert registry.scalar_value("repro_kernel_words_total") == 42

    def test_collector_dies_with_its_owner(self):
        registry = MetricsRegistry()
        kernel = _Kernel(10)
        registry.register_collector(kernel.samples)
        assert registry.scalar_value("repro_kernel_words_total") == 10
        del kernel
        with pytest.raises(KeyError):
            registry.scalar_value("repro_kernel_words_total")

    def test_scalar_value_unknown_series_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().scalar_value("repro_absent_total")

    def test_null_registry_is_inert(self):
        assert not NULL_REGISTRY.enabled
        counter = NULL_REGISTRY.counter("repro_ignored_total")
        counter.inc(10)
        assert counter.value == 0
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.collect() == ([], [])
        # Null instruments are shared singletons: no allocation per call.
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")

    def test_telemetry_defaults_off(self):
        assert not NULL_TELEMETRY.enabled
        assert Telemetry.off() is NULL_TELEMETRY
        on = Telemetry.on()
        assert on.enabled and on.metrics.enabled and not on.tracer.enabled
        traced = Telemetry.on(trace=True)
        assert traced.tracer.enabled


# ----------------------------------------------------------------------
# Prometheus rendering and parsing
# ----------------------------------------------------------------------


class TestPrometheus:
    def test_render_empty_registry(self):
        text = render_prometheus(MetricsRegistry())
        assert parse_prometheus_text(text) == {}

    def test_render_empty_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("repro_empty_seconds", buckets=(0.1, 1.0))
        series = parse_prometheus_text(render_prometheus(registry))
        assert series['repro_empty_seconds_bucket{le="+Inf"}'] == 0
        assert series["repro_empty_seconds_count"] == 0
        assert series["repro_empty_seconds_sum"] == 0

    def test_round_trip_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total", help="Events.", kind="a").inc(3)
        registry.counter("repro_events_total", kind="b").inc(1)
        registry.gauge("repro_depth", help="Depth.").set(7)
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(10.0)
        text = render_prometheus(registry)
        series = parse_prometheus_text(text)
        assert series['repro_events_total{kind="a"}'] == 3
        assert series['repro_events_total{kind="b"}'] == 1
        assert series["repro_depth"] == 7
        # Cumulative le buckets: 0.1 holds 1, 1.0 holds 2, +Inf holds 3.
        assert series['repro_lat_seconds_bucket{le="0.1"}'] == 1
        assert series['repro_lat_seconds_bucket{le="1"}'] == 2
        assert series['repro_lat_seconds_bucket{le="+Inf"}'] == 3
        assert series["repro_lat_seconds_count"] == 3
        assert series["repro_lat_seconds_sum"] == pytest.approx(10.55)

    def test_counter_rendered_with_total_suffix_once(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits").inc()
        registry.counter("repro_misses_total").inc()
        text = render_prometheus(registry)
        assert "repro_hits_total 1" in text
        assert "repro_misses_total 1" in text
        assert "repro_misses_total_total" not in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_esc_total", path='a"b\\c\nd').inc()
        series = parse_prometheus_text(render_prometheus(registry))
        assert len(series) == 1
        (key,) = series
        assert key.startswith("repro_esc_total{path=")

    @pytest.mark.parametrize(
        "bad",
        [
            "not a metric line",
            "name{unterminated=\"x} 1",
            "repro_x_total notanumber",
            "# BOGUS comment kind",
        ],
    )
    def test_parser_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_metrics_snapshot_is_schema_versioned(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total").inc(2)
        registry.histogram("repro_lat_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = metrics_snapshot(registry)
        assert snapshot["schema_version"] == SCHEMA_VERSION
        assert snapshot["kind"] == "metrics_snapshot"
        assert snapshot["counters"]["repro_events_total"] == 2
        assert snapshot["histograms"]["repro_lat_seconds"]["count"] == 1
        json.dumps(snapshot)  # must be serialisable as-is


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracer:
    def test_span_tree_shape(self):
        tracer = Tracer()
        with tracer.span("root", circuit="c17") as root:
            with tracer.span("child.a"):
                pass
            tracer.record("child.recorded", 0.25, source="memo")
        assert tracer.roots == [root]
        names = [c.name for c in root.children]
        assert names == ["child.a", "child.recorded"]
        assert root.attrs == {"circuit": "c17"}
        recorded = root.children[1]
        assert recorded.seconds == 0.25
        assert recorded.attrs["source"] == "memo"

    def test_span_seconds_measured(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.seconds >= 0.0
        assert span.elapsed6() >= span.seconds

    def test_null_tracer_spans_still_time(self):
        # The serve worker stamps response bodies with span.elapsed6()
        # whether or not telemetry is enabled.
        with NULL_TRACER.span("x") as span:
            pass
        assert span.seconds >= 0.0
        assert isinstance(span.elapsed6(), float)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.record("y", 1.0) is None

    def test_trace_document_schema(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        document = trace_document(tracer)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "trace"
        assert document["trace_id"] == tracer.trace_id
        assert validate_trace_document(document) is document
        round_tripped = json.loads(json.dumps(document))
        assert validate_trace_document(round_tripped)["spans"][0]["children"]

    def test_validate_rejects_wrong_kind_and_missing_spans(self):
        with pytest.raises(SchemaMismatchError):
            validate_trace_document(
                {"schema_version": SCHEMA_VERSION, "kind": "pipeline_result"}
            )
        with pytest.raises(ValueError):
            validate_trace_document(
                {"schema_version": SCHEMA_VERSION, "kind": "trace"}
            )

    def test_profile_table_renders(self):
        tracer = Tracer()
        with tracer.span("root", circuit="s420"):
            with tracer.span("child", rows=5):
                pass
        table = profile_table(trace_document(tracer))
        assert "root" in table and "  child" in table
        assert "circuit=s420" in table


# ----------------------------------------------------------------------
# The StageEvent bridge
# ----------------------------------------------------------------------


class TestStageHook:
    def test_stage_event_old_positional_construction(self):
        event = StageEvent("atpg", "done", 1.5, "42 faults")
        assert event.stage == "atpg"
        assert event.detail == "42 faults"
        assert event.attrs is None

    def test_start_done_pair_becomes_span_and_metrics(self):
        telemetry = Telemetry.on(trace=True)
        seen = []
        hook = stage_hook(telemetry, seen.append)
        hook(StageEvent("detection_matrix", "start"))
        hook(
            StageEvent(
                "detection_matrix", "done", 0.5, attrs={"rows_built": 5}
            )
        )
        assert [e.status for e in seen] == ["start", "done"]
        (root,) = telemetry.tracer.roots
        assert root.name == "flow.detection_matrix"
        assert root.attrs["status"] == "done"
        assert root.attrs["rows_built"] == 5
        assert (
            telemetry.metrics.scalar_value(
                "repro_flow_stage_runs_total",
                stage="detection_matrix",
                status="done",
            )
            == 1
        )
        hist = telemetry.metrics.histogram(
            "repro_flow_stage_seconds", stage="detection_matrix"
        )
        assert hist.count == 1

    def test_done_without_start_records_span(self):
        telemetry = Telemetry.on(trace=True)
        hook = stage_hook(telemetry)
        hook(StageEvent("atpg", "done", 2.0, attrs={"test_length": 13}))
        (span,) = telemetry.tracer.roots
        assert span.name == "flow.atpg"
        assert span.seconds == 2.0
        assert span.attrs["test_length"] == 13

    def test_metrics_only_telemetry_keeps_counting(self):
        telemetry = Telemetry.on()  # null tracer
        hook = stage_hook(telemetry)
        hook(StageEvent("trim", "start"))
        hook(StageEvent("trim", "skipped", 0.0))
        assert (
            telemetry.metrics.scalar_value(
                "repro_flow_stage_runs_total", stage="trim", status="skipped"
            )
            == 1
        )
        assert telemetry.tracer.roots == []
