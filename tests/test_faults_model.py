"""Tests for the stuck-at fault model."""

from __future__ import annotations

import pytest

from repro.faults.model import Fault, FaultSite, full_fault_list, output_stem_faults


class TestFaultBasics:
    def test_stuck_value_validated(self):
        with pytest.raises(ValueError):
            Fault.stem("a", 2)

    def test_stem_constructor(self):
        fault = Fault.stem("a", 1)
        assert not fault.site.is_branch
        assert str(fault) == "a/SA1"

    def test_branch_constructor(self):
        fault = Fault.branch("a", "g1", 0, 0)
        assert fault.site.is_branch
        assert str(fault) == "a->g1.0/SA0"

    def test_faults_hashable_and_equal(self):
        assert Fault.stem("a", 0) == Fault.stem("a", 0)
        assert len({Fault.stem("a", 0), Fault.stem("a", 0)}) == 1

    def test_ordering_total(self):
        faults = [
            Fault.branch("a", "g", 1, 0),
            Fault.stem("a", 1),
            Fault.stem("a", 0),
            Fault.branch("a", "g", 0, 1),
        ]
        ordered = sorted(faults)
        # stems sort before branches on the same net
        assert ordered[0] == Fault.stem("a", 0)
        assert ordered[1] == Fault.stem("a", 1)

    def test_site_str(self):
        assert str(FaultSite("n")) == "n"
        assert str(FaultSite("n", "g", 2)) == "n->g.2"


class TestFaultUniverse:
    def test_c17_universe_size(self, c17):
        # 11 nets * 2 stem faults; fanout stems 3, 11, 16 (2 readers each)
        # contribute 2 branch pins * 2 values each.
        faults = full_fault_list(c17)
        stems = [f for f in faults if not f.site.is_branch]
        branches = [f for f in faults if f.site.is_branch]
        assert len(stems) == 22
        assert len(branches) == 12
        assert len(faults) == 34

    def test_single_reader_nets_have_no_branch_faults(self, mux_circuit):
        faults = full_fault_list(mux_circuit)
        branch_nets = {f.site.net for f in faults if f.site.is_branch}
        # only 's' has two readers in the mux
        assert branch_nets == {"s"}

    def test_universe_has_no_duplicates(self, c17):
        faults = full_fault_list(c17)
        assert len(faults) == len(set(faults))

    def test_every_net_covered(self, mux_circuit):
        faults = full_fault_list(mux_circuit)
        stem_nets = {f.site.net for f in faults if not f.site.is_branch}
        assert stem_nets == set(mux_circuit.nodes)

    def test_output_stem_faults(self, c17):
        faults = output_stem_faults(c17)
        assert len(faults) == 4
        assert {f.site.net for f in faults} == set(c17.outputs)
