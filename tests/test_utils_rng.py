"""Tests for the named deterministic RNG streams."""

from __future__ import annotations

from repro.utils.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_depends_on_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_depends_on_names(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_depends_on_name_order(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_path_not_ambiguous_with_concatenation(self):
        # ("ab",) must differ from ("a", "b").
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_accepts_int_names(self):
        assert derive_seed(1, 5) == derive_seed(1, 5)
        assert derive_seed(1, 5) != derive_seed(1, 6)


class TestRngStream:
    def test_same_path_same_sequence(self):
        a = RngStream(9, "x").getrandbits(64)
        b = RngStream(9, "x").getrandbits(64)
        assert a == b

    def test_different_paths_diverge(self):
        a = RngStream(9, "x").getrandbits(64)
        b = RngStream(9, "y").getrandbits(64)
        assert a != b

    def test_child_stream_is_namespaced(self):
        parent = RngStream(9, "x")
        child = parent.child("sub")
        direct = RngStream(9, "x", "sub")
        assert child.getrandbits(64) == direct.getrandbits(64)

    def test_child_does_not_consume_parent_state(self):
        parent = RngStream(9, "x")
        first = RngStream(9, "x").getrandbits(64)
        parent.child("sub")
        assert parent.getrandbits(64) == first

    def test_full_random_api_available(self):
        stream = RngStream(9, "api")
        stream.shuffle(items := list(range(10)))
        assert sorted(items) == list(range(10))
        assert 0 <= stream.randrange(5) < 5
        assert stream.choice([1, 2, 3]) in (1, 2, 3)

    def test_repr_mentions_path(self):
        assert "a/b" in repr(RngStream(9, "a", "b"))
