"""Integration tests for the Figure-1 pipeline and Figure-2 trade-off."""

from __future__ import annotations

import pytest

from repro.circuits import load_circuit
from repro.flow import PipelineConfig, ReseedingPipeline, explore_tradeoff
from repro.sim.fault import FaultSimulator
from repro.tpg import make_tpg


@pytest.fixture(scope="module")
def small_circuit():
    return load_circuit("s420", scale=0.35)


@pytest.fixture(scope="module")
def pipeline_result(small_circuit):
    config = PipelineConfig(evolution_length=16, max_random_patterns=512)
    return ReseedingPipeline(small_circuit, "adder", config).run()


class TestPipeline:
    def test_final_solution_covers_target_faults(
        self, small_circuit, pipeline_result
    ):
        simulator = FaultSimulator(small_circuit)
        tpg = make_tpg("adder", small_circuit.n_inputs)
        patterns = pipeline_result.trimmed.solution.patterns(tpg)
        coverage = simulator.fault_coverage(
            patterns, pipeline_result.atpg.target_faults
        )
        assert coverage == 1.0

    def test_solution_never_larger_than_initial(self, pipeline_result):
        assert pipeline_result.n_triplets <= pipeline_result.initial.n_triplets

    def test_solution_parts_consistent(self, pipeline_result):
        cover = pipeline_result.cover
        assert pipeline_result.n_triplets == cover.n_selected
        assert cover.stats.n_essential == pipeline_result.n_necessary
        assert cover.stats.n_solver_selected == pipeline_result.n_from_solver

    def test_selected_triplets_come_from_initial_pool(self, pipeline_result):
        pool = set(pipeline_result.initial.triplets)
        assert all(t in pool for t in pipeline_result.selected_triplets)

    def test_test_length_within_bounds(self, pipeline_result):
        n = pipeline_result.n_triplets
        T = pipeline_result.config.evolution_length
        assert n <= pipeline_result.test_length <= n * T

    def test_timings_recorded(self, pipeline_result):
        assert set(pipeline_result.timings) == {
            "atpg",
            "detection_matrix",
            "set_cover",
            "trim",
        }
        assert all(v >= 0 for v in pipeline_result.timings.values())

    def test_summary_format(self, pipeline_result):
        text = pipeline_result.summary()
        assert "#Triplets=" in text
        assert "TestLength=" in text

    def test_deterministic(self, small_circuit):
        config = PipelineConfig(evolution_length=16, max_random_patterns=512)
        a = ReseedingPipeline(small_circuit, "adder", config).run()
        b = ReseedingPipeline(small_circuit, "adder", config).run()
        assert a.selected_triplets == b.selected_triplets
        assert a.test_length == b.test_length

    def test_atpg_result_shareable(self, small_circuit, pipeline_result):
        """Reusing the circuit-level ATPG across TPGs (the Table-1 setup)
        must produce a valid covering solution for another TPG."""
        config = PipelineConfig(evolution_length=16)
        pipeline = ReseedingPipeline(
            small_circuit,
            "multiplier",
            config,
            atpg_result=pipeline_result.atpg,
        )
        result = pipeline.run()
        assert result.timings["atpg"] < 0.01  # skipped
        simulator = FaultSimulator(small_circuit)
        tpg = make_tpg("multiplier", small_circuit.n_inputs)
        patterns = result.trimmed.solution.patterns(tpg)
        assert simulator.fault_coverage(patterns, result.atpg.target_faults) == 1.0

    def test_string_tpg_resolved(self, small_circuit):
        pipeline = ReseedingPipeline(small_circuit, "subtracter")
        assert pipeline.tpg.name == "subtracter"


class TestTradeoff:
    @pytest.fixture(scope="class")
    def points(self, small_circuit, pipeline_result):
        return explore_tradeoff(
            small_circuit,
            "adder",
            [2, 8, 32, 128],
            atpg_result=pipeline_result.atpg,
        )

    def test_one_point_per_length(self, points):
        assert [p.evolution_length for p in points] == [2, 8, 32, 128]

    def test_triplets_non_increasing_in_length(self, points):
        """Figure 2's left-to-right shape."""
        counts = [p.n_triplets for p in points]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_longer_evolutions_allow_fewer_triplets(self, points):
        assert points[0].n_triplets > points[-1].n_triplets or (
            points[0].n_triplets == points[-1].n_triplets == 1
        )

    def test_as_tuple(self, points):
        T, n, length = points[0].as_tuple()
        assert (T, n, length) == (
            points[0].evolution_length,
            points[0].n_triplets,
            points[0].test_length,
        )

    def test_empty_sweep_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            explore_tradeoff(small_circuit, "adder", [])

    def test_bad_length_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            explore_tradeoff(small_circuit, "adder", [0])
