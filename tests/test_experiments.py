"""Tests for the experiment drivers (structure + invariants, tiny scale)."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    CircuitWorkspace,
    ExperimentConfig,
    config_from_args,
    make_arg_parser,
)
from repro.experiments.figure2 import compute_figure2, render_figure2
from repro.experiments.table1 import Table1Cell, compute_table1, render_table1
from repro.experiments.table2 import compute_table2, render_table2

TINY = ExperimentConfig(
    circuits=("c17", "s27"),
    scale=1.0,  # embedded circuits ignore scale anyway
    seed=7,
    evolution_length=8,
    max_random_patterns=128,
    run_gatsby=False,
)


@pytest.fixture(scope="module")
def tiny_workspaces():
    return {name: CircuitWorkspace.prepare(name, TINY) for name in TINY.circuits}


class TestCommon:
    def test_workspace_prepare(self, tiny_workspaces):
        workspace = tiny_workspaces["c17"]
        assert workspace.circuit.n_gates == 6
        assert workspace.atpg.test_length > 0

    def test_run_pipeline_reuses_atpg(self, tiny_workspaces):
        workspace = tiny_workspaces["c17"]
        result = workspace.run_pipeline("adder", TINY)
        assert result.atpg is workspace.atpg
        assert result.timings["atpg"] < 0.01

    def test_gatsby_skipped_above_gate_limit(self, tiny_workspaces):
        from repro.experiments import common

        workspace = tiny_workspaces["c17"]
        original = common.GATSBY_GATE_LIMIT
        common.GATSBY_GATE_LIMIT = 1
        try:
            assert workspace.run_gatsby("adder", TINY) is None
        finally:
            common.GATSBY_GATE_LIMIT = original

    def test_arg_parser_defaults(self):
        parser = make_arg_parser("t")
        config = config_from_args(parser.parse_args([]))
        assert config.scale == 0.25
        assert config.run_gatsby

    def test_arg_parser_full_and_flags(self):
        from repro.experiments.common import FULL_CIRCUITS

        parser = make_arg_parser("t")
        config = config_from_args(
            parser.parse_args(["--full", "--no-gatsby", "--scale", "0.1"])
        )
        assert config.circuits == FULL_CIRCUITS
        assert not config.run_gatsby
        assert config.scale == 0.1

    def test_arg_parser_explicit_circuits(self):
        parser = make_arg_parser("t")
        config = config_from_args(parser.parse_args(["--circuits", "c17", "s27"]))
        assert config.circuits == ("c17", "s27")


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self, tiny_workspaces):
        return compute_table1(TINY, workspaces=tiny_workspaces)

    def test_one_row_per_circuit(self, rows):
        assert [row.circuit for row in rows] == list(TINY.circuits)

    def test_all_tpgs_present(self, rows):
        from repro.tpg.registry import PAPER_TPGS

        for row in rows:
            assert set(row.cells) == set(PAPER_TPGS)

    def test_cells_within_bounds(self, rows, tiny_workspaces):
        for row in rows:
            atpg_length = tiny_workspaces[row.circuit].atpg.test_length
            for cell in row.cells.values():
                assert 1 <= cell.n_triplets <= atpg_length
                assert cell.n_triplets <= cell.test_length

    def test_gatsby_none_when_disabled(self, rows):
        for row in rows:
            for cell in row.cells.values():
                assert cell.gatsby_triplets is None
                assert cell.improvement is None
                assert not cell.gatsby_complete

    def test_render_contains_all_circuits(self, rows):
        text = render_table1(rows).render()
        for name in TINY.circuits:
            assert name in text

    def test_cell_improvement(self):
        cell = Table1Cell(3, 50, 5, 80, 1.0)
        assert cell.improvement == 2
        assert cell.gatsby_complete
        incomplete = Table1Cell(3, 50, 2, 30, 0.98)
        assert not incomplete.gatsby_complete


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self, tiny_workspaces):
        return compute_table2(TINY, workspaces=tiny_workspaces)

    def test_initial_shape_matches_atpg(self, rows, tiny_workspaces):
        for row in rows:
            workspace = tiny_workspaces[row.circuit]
            assert row.initial_shape == (
                workspace.atpg.test_length,
                len(workspace.atpg.target_faults),
            )

    def test_reduction_accounting(self, rows):
        for row in rows:
            for cell in row.cells.values():
                if cell.closed_by_reduction:
                    assert cell.n_solver == 0
                reduced_rows, reduced_cols = cell.reduced_shape
                assert reduced_rows <= row.initial_shape[0]
                assert reduced_cols <= row.initial_shape[1]

    def test_necessary_plus_solver_consistent_with_table1(
        self, rows, tiny_workspaces
    ):
        table1 = compute_table1(TINY, workspaces=tiny_workspaces)
        for row2, row1 in zip(rows, table1):
            for tpg_name, cell2 in row2.cells.items():
                cell1 = row1.cells[tpg_name]
                assert cell2.n_necessary + cell2.n_solver == cell1.n_triplets

    def test_render(self, rows):
        text = render_table2(rows).render()
        assert "initial matrix" in text
        assert "necessary" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def points(self):
        return compute_figure2(
            circuit_name="c17",
            tpg_name="adder",
            lengths=(1, 4, 16),
            scale=1.0,
            seed=7,
        )

    def test_sweep_order(self, points):
        assert [p.evolution_length for p in points] == [1, 4, 16]

    def test_monotone_triplets(self, points):
        counts = [p.n_triplets for p in points]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_t1_degenerates_to_atpg_selection(self, points):
        """With T=1 each triplet is exactly one ATPG pattern (the paper's
        tau='0' remark), so test length equals triplet count."""
        first = points[0]
        assert first.evolution_length == 1
        assert first.test_length == first.n_triplets

    def test_render(self, points):
        text = render_figure2(points)
        assert "Figure 2" in text
        assert "#Triplets" in text
