"""Tests for the covering solvers (greedy, B&B, ILP, GRASP, orchestrator)."""

from __future__ import annotations

import pytest

from repro.setcover import (
    CoverMatrix,
    branch_and_bound,
    grasp_cover,
    greedy_cover,
    ilp_cover,
    solve_cover,
)
from repro.setcover.greedy import drop_redundant


def _cyclic3():
    """The smallest cyclic instance; optimum is 2."""
    return CoverMatrix.from_row_sets({0: {0, 1}, 1: {1, 2}, 2: {2, 0}})


def _with_optimum_3():
    """6 columns, optimum 3 rows, greedy can be misled."""
    return CoverMatrix.from_row_sets(
        {
            0: {0, 1},
            1: {2, 3},
            2: {4, 5},
            3: {0, 2, 4},
            4: {1, 3},
        }
    )


class TestGreedy:
    def test_produces_valid_cover(self):
        matrix = _with_optimum_3()
        assert matrix.validate_solution(greedy_cover(matrix))

    def test_deterministic(self):
        assert greedy_cover(_cyclic3()) == greedy_cover(_cyclic3())

    def test_infeasible_rejected(self):
        matrix = CoverMatrix.from_row_sets({0: {0}}, n_columns=2)
        with pytest.raises(ValueError):
            greedy_cover(matrix)

    def test_drop_redundant(self):
        matrix = _cyclic3()
        bloated = [0, 1, 2]  # any 2 suffice
        slim = drop_redundant(matrix, bloated)
        assert len(slim) == 2
        assert matrix.validate_solution(slim)


class TestBranchAndBound:
    def test_cyclic_optimum(self):
        result = branch_and_bound(_cyclic3())
        assert len(result.selected) == 2
        assert result.optimal

    def test_empty_matrix(self):
        result = branch_and_bound(CoverMatrix({}, {}))
        assert result.selected == []
        assert result.optimal

    def test_single_row_instance(self):
        matrix = CoverMatrix.from_row_sets({5: {0, 1, 2}})
        result = branch_and_bound(matrix)
        assert result.selected == [5]

    def test_beats_greedy_when_greedy_suboptimal(self):
        # classic greedy trap: a big row that forces 3 picks vs optimum 2
        matrix = CoverMatrix.from_row_sets(
            {
                0: {0, 1, 2, 3},
                1: {0, 1, 4},
                2: {2, 3, 5},
                3: {4, 5},
            }
        )
        greedy = drop_redundant(matrix, greedy_cover(matrix))
        exact = branch_and_bound(matrix)
        assert len(exact.selected) <= len(greedy)
        assert len(exact.selected) == 2  # rows 1+2 … check: 1 u 2 = {0,1,2,3,4,5}
        assert matrix.validate_solution(exact.selected)

    def test_infeasible_rejected(self):
        matrix = CoverMatrix.from_row_sets({0: {0}}, n_columns=2)
        with pytest.raises(ValueError):
            branch_and_bound(matrix)


class TestIlp:
    def test_matches_bnb_on_cyclic(self):
        assert len(ilp_cover(_cyclic3()).selected) == 2

    def test_root_bound_recorded(self):
        result = ilp_cover(_cyclic3())
        # LP relaxation of the 3-cycle is 1.5
        assert result.root_lp_bound == pytest.approx(1.5)
        assert result.optimal

    def test_empty_matrix(self):
        result = ilp_cover(CoverMatrix({}, {}))
        assert result.selected == []

    def test_infeasible_rejected(self):
        matrix = CoverMatrix.from_row_sets({0: {0}}, n_columns=2)
        with pytest.raises(ValueError):
            ilp_cover(matrix)

    def test_solution_is_cover(self):
        matrix = _with_optimum_3()
        result = ilp_cover(matrix)
        assert matrix.validate_solution(result.selected)


class TestGrasp:
    def test_valid_cover(self):
        matrix = _with_optimum_3()
        result = grasp_cover(matrix, iterations=10)
        assert matrix.validate_solution(result.selected)

    def test_finds_optimum_on_small_instance(self):
        result = grasp_cover(_cyclic3(), iterations=10)
        assert len(result.selected) == 2

    def test_deterministic_given_seed(self):
        a = grasp_cover(_with_optimum_3(), seed=9, iterations=5)
        b = grasp_cover(_with_optimum_3(), seed=9, iterations=5)
        assert a.selected == b.selected

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            grasp_cover(_cyclic3(), alpha=1.5)

    def test_empty_matrix(self):
        assert grasp_cover(CoverMatrix({}, {})).selected == []


class TestSolveCover:
    def test_auto_solves_to_optimum(self):
        solution = solve_cover(_cyclic3())
        assert solution.n_selected == 2
        assert solution.stats.optimal

    def test_stats_fields(self):
        solution = solve_cover(_cyclic3())
        stats = solution.stats
        assert stats.initial_shape == (3, 3)
        assert stats.n_essential == 0
        assert stats.reduced_shape == (3, 3)
        assert stats.n_solver_selected == 2
        assert stats.solver == "ilp"
        assert not stats.closed_by_reduction

    def test_closed_by_reduction_instance(self):
        matrix = CoverMatrix.from_row_sets({0: {0, 1, 2}, 1: {1}, 2: {2}})
        solution = solve_cover(matrix)
        assert solution.stats.closed_by_reduction
        assert solution.stats.solver == "none"
        assert solution.selected == solution.essential == [0]

    def test_essential_and_solver_parts_disjoint(self):
        matrix = CoverMatrix.from_row_sets(
            {0: {0}, 1: {1, 2}, 2: {2, 3}, 3: {3, 1}}
        )
        solution = solve_cover(matrix)
        assert not set(solution.essential) & set(solution.solver_selected)
        assert set(solution.selected) == set(solution.essential) | set(
            solution.solver_selected
        )

    @pytest.mark.parametrize("method", ["auto", "ilp", "bnb", "grasp", "greedy"])
    def test_all_methods_produce_valid_covers(self, method):
        matrix = _with_optimum_3()
        solution = solve_cover(matrix, method=method)
        assert matrix.validate_solution(solution.selected)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            solve_cover(_cyclic3(), method="magic")
