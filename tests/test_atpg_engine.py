"""Integration tests for the full ATPG engine."""

from __future__ import annotations

import pytest

from repro.atpg.engine import AtpgEngine
from repro.circuits import load_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault, full_fault_list
from repro.sim.fault import FaultSimulator


class TestEngineOnC17:
    @pytest.fixture(scope="class")
    def result(self):
        circuit = load_circuit("c17")
        return AtpgEngine(circuit, seed=7).run()

    def test_complete_coverage_of_target_faults(self, result):
        circuit = load_circuit("c17")
        simulator = FaultSimulator(circuit)
        coverage = simulator.fault_coverage(result.test_set, result.target_faults)
        assert coverage == 1.0

    def test_no_untestable_in_c17(self, result):
        assert result.untestable == []
        assert result.aborted == []

    def test_target_faults_cover_collapsed_universe(self, result):
        circuit = load_circuit("c17")
        assert set(result.target_faults) == set(collapse_faults(circuit))

    def test_counters_consistent(self, result):
        assert result.test_length == len(result.test_set)
        assert result.n_collapsed_faults == len(result.target_faults)
        assert result.testable_fraction == 1.0

    def test_summary_mentions_circuit(self, result):
        assert "c17" in result.summary()


class TestEngineProperties:
    def test_deterministic(self):
        circuit = load_circuit("s27")
        a = AtpgEngine(circuit, seed=3).run()
        b = AtpgEngine(circuit, seed=3).run()
        assert a.test_set == b.test_set
        assert a.target_faults == b.target_faults

    def test_seed_changes_patterns(self):
        circuit = load_circuit("s27")
        a = AtpgEngine(circuit, seed=3).run()
        b = AtpgEngine(circuit, seed=4).run()
        assert a.test_set != b.test_set  # same coverage, different patterns

    def test_redundant_faults_classified(self, redundant_circuit):
        result = AtpgEngine(redundant_circuit, seed=1).run(
            full_fault_list(redundant_circuit)
        )
        assert Fault.stem("t", 0) in result.untestable
        simulator = FaultSimulator(redundant_circuit)
        assert simulator.fault_coverage(result.test_set, result.target_faults) == 1.0

    def test_explicit_fault_subset(self, c17):
        faults = [Fault.stem("22", 0), Fault.stem("23", 1)]
        result = AtpgEngine(c17, seed=1).run(faults)
        assert set(result.target_faults) == set(faults)
        simulator = FaultSimulator(c17)
        assert simulator.fault_coverage(result.test_set, faults) == 1.0

    def test_compaction_toggle(self):
        circuit = load_circuit("s27")
        compacted = AtpgEngine(circuit, seed=3, compact=True).run()
        raw = AtpgEngine(circuit, seed=3, compact=False).run()
        assert compacted.test_length <= raw.test_length

    def test_synthetic_circuit_full_coverage(self):
        """End-to-end on a mid-size synthetic circuit: ATPGTS must cover
        the target list completely (the paper's precondition)."""
        circuit = load_circuit("s420", scale=0.5)
        engine = AtpgEngine(circuit, seed=11, max_random_patterns=1024)
        result = engine.run()
        coverage = engine.simulator.fault_coverage(
            result.test_set, result.target_faults
        )
        assert coverage == 1.0
        assert result.test_length > 0
        # classification partitions the collapsed universe
        total = (
            len(result.target_faults) + len(result.untestable) + len(result.aborted)
        )
        assert total == result.n_collapsed_faults
