"""Tests for the flow-layer redesign: sessions, stages, cache, serde."""

from __future__ import annotations

import json

import pytest

from repro.circuits import load_circuit
from repro.flow.pipeline import PipelineConfig, PipelineResult, ReseedingPipeline
from repro.flow.serialize import SCHEMA_VERSION, SchemaMismatchError
from repro.flow.session import ArtifactCache, Session
from repro.flow.stages import (
    DEFAULT_STAGES,
    StageContext,
    StageEvent,
    make_stage,
    run_flow,
    stage_names,
)
from repro.sim.fault import FaultSimulator
from repro.utils.registry import UnknownComponentError

CONFIG = PipelineConfig(evolution_length=8, max_random_patterns=128)


@pytest.fixture(scope="module")
def c17():
    return load_circuit("c17")


@pytest.fixture(scope="module")
def baseline(c17):
    """The compatibility wrapper's result — the bit-exactness reference."""
    return ReseedingPipeline(c17, "adder", CONFIG).run()


class TestStages:
    def test_registry_contents(self):
        # The default Figure-1 chain plus the off-chain diagnosis stage.
        assert set(stage_names()) == set(DEFAULT_STAGES) | {"diagnosis"}
        assert [n for n in stage_names() if n != "diagnosis"] == list(
            DEFAULT_STAGES
        )

    def test_unknown_stage_rejected(self):
        with pytest.raises(UnknownComponentError, match="unknown stage"):
            make_stage("atgp")

    def test_unknown_stage_suggests(self):
        with pytest.raises(UnknownComponentError, match="did you mean"):
            make_stage("atgp")

    def test_run_flow_matches_pipeline(self, c17, baseline):
        ctx = StageContext(
            circuit=c17,
            tpg=ReseedingPipeline(c17, "adder", CONFIG).tpg,
            config=CONFIG,
            simulator=FaultSimulator(c17),
        )
        result = run_flow(ctx)
        assert result.n_triplets == baseline.n_triplets
        assert result.test_length == baseline.test_length
        assert result.selected_triplets == baseline.selected_triplets

    def test_progress_events(self, c17):
        events: list[StageEvent] = []
        ReseedingPipeline(c17, "adder", CONFIG).run(progress=events.append)
        stages = [e.stage for e in events if e.status == "start"]
        assert stages == list(DEFAULT_STAGES)
        done = [e.stage for e in events if e.status == "done"]
        assert done == list(DEFAULT_STAGES)
        assert all(e.seconds >= 0 for e in events)

    def test_preseeded_atpg_emits_skipped(self, c17, baseline):
        events: list[StageEvent] = []
        pipeline = ReseedingPipeline(
            c17, "adder", CONFIG, atpg_result=baseline.atpg
        )
        pipeline.run(progress=events.append)
        statuses = {e.stage: e.status for e in events if e.status != "start"}
        assert statuses["atpg"] == "skipped"
        assert statuses["trim"] == "done"

    def test_missing_requirement_rejected(self, c17):
        ctx = StageContext(
            circuit=c17,
            tpg=ReseedingPipeline(c17, "adder", CONFIG).tpg,
            config=CONFIG,
            simulator=FaultSimulator(c17),
        )
        with pytest.raises(ValueError, match="missing required artifacts"):
            make_stage("set_cover").execute(ctx)

    def test_partial_flow_resumes_from_artifacts(self, c17, baseline):
        """Seeding upstream artefacts lets a flow start mid-chain."""
        ctx = StageContext(
            circuit=c17,
            tpg=ReseedingPipeline(c17, "adder", CONFIG).tpg,
            config=CONFIG,
            simulator=FaultSimulator(c17),
        )
        ctx.artifacts["atpg"] = baseline.atpg
        ctx.artifacts["initial"] = baseline.initial
        result = run_flow(ctx, ["set_cover", "trim"])
        assert result.n_triplets == baseline.n_triplets
        assert result.test_length == baseline.test_length


class TestSerialization:
    def test_round_trip_preserves_everything(self, baseline):
        clone = PipelineResult.from_dict(json.loads(baseline.to_json()))
        assert clone.circuit_name == baseline.circuit_name
        assert clone.tpg_name == baseline.tpg_name
        assert clone.config == baseline.config
        assert clone.n_triplets == baseline.n_triplets
        assert clone.test_length == baseline.test_length
        assert clone.atpg.test_set == baseline.atpg.test_set
        assert clone.atpg.target_faults == baseline.atpg.target_faults
        assert clone.initial.triplets == baseline.initial.triplets
        assert (
            clone.initial.detection_matrix.matrix
            == baseline.initial.detection_matrix.matrix
        ).all()
        assert clone.cover.selected == baseline.cover.selected
        assert clone.cover.stats == baseline.cover.stats
        assert clone.selected_triplets == baseline.selected_triplets
        assert clone.trimmed.solution == baseline.trimmed.solution
        assert clone.trimmed.delta_coverage == baseline.trimmed.delta_coverage
        assert clone.timings == baseline.timings

    def test_dict_is_json_compatible(self, baseline):
        text = json.dumps(baseline.to_dict())
        assert json.loads(text)["schema_version"] == SCHEMA_VERSION

    def test_atpg_round_trip(self, baseline):
        from repro.atpg.engine import AtpgResult

        clone = AtpgResult.from_dict(json.loads(json.dumps(baseline.atpg.to_dict())))
        assert clone.test_set == baseline.atpg.test_set
        assert clone.target_faults == baseline.atpg.target_faults
        assert clone.untestable == baseline.atpg.untestable
        assert clone.n_collapsed_faults == baseline.atpg.n_collapsed_faults

    def test_schema_version_checked(self, baseline):
        payload = baseline.to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaMismatchError):
            PipelineResult.from_dict(payload)

    def test_kind_checked(self, baseline):
        payload = baseline.to_dict()
        payload["kind"] = "atpg_result"
        with pytest.raises(SchemaMismatchError):
            PipelineResult.from_dict(payload)


def _serve_bodies(baseline):
    """One representative instance of every serve-layer wire kind."""
    from repro.diagnosis.result import DiagnosisResult
    from repro.flow.serialize import diagnosis_result_to_dict
    from repro.serve.api import (
        AtpgRequest,
        AtpgResponse,
        DiagnoseRequest,
        DiagnoseResponse,
        PatternSet,
        ServeError,
        SweepRequest,
        SweepResponse,
    )
    from repro.utils.bitvec import BitVector

    diagnosis_payload = diagnosis_result_to_dict(
        DiagnosisResult(
            circuit_name="c17",
            mode="dictionary",
            n_patterns=4,
            n_failing=1,
            candidates=[],
            n_candidates_considered=3,
        )
    )
    return {
        "pattern_set": PatternSet(
            circuit_name="c17",
            width=5,
            patterns=(
                BitVector.from_string("10101"),
                BitVector.from_string("01010"),
            ),
        ),
        "diagnose_request": DiagnoseRequest(
            circuit="c17",
            responses=("10", "01"),
            patterns=("10101", "01010"),
            method="dictionary",
            top_k=5,
            timeout_ms=1500,
        ),
        "diagnose_response": DiagnoseResponse(
            result=diagnosis_payload,
            patterns_ref="ab" * 32,
            batched=True,
            batch_size=4,
            seconds=0.0123,
        ),
        "atpg_request": AtpgRequest(circuit="c17", max_random_patterns=64),
        "atpg_response": AtpgResponse(
            result=baseline.atpg.to_dict(), from_memo=True, seconds=0.5
        ),
        "sweep_request": SweepRequest(
            circuits=("c17", "s27"), evolution_lengths=(8, 16)
        ),
        "sweep_response": SweepResponse(
            cells=({"circuit": "c17", "tpg": "adder", "n_triplets": 3},),
            n_cached=1,
            seconds=1.25,
        ),
        "serve_error": ServeError(
            error="queue full", status=429, retry_after=1.0
        ),
    }


SERVE_KINDS = [
    "pattern_set",
    "diagnose_request",
    "diagnose_response",
    "atpg_request",
    "atpg_response",
    "sweep_request",
    "sweep_response",
    "serve_error",
]


class TestServeSerialization:
    """The serve wire kinds ride the same schema-versioned discipline
    as the artifact kinds above — round-trip + skew rejection each."""

    @pytest.mark.parametrize("kind", SERVE_KINDS)
    def test_round_trip_preserves_everything(self, baseline, kind):
        body = _serve_bodies(baseline)[kind]
        payload = body.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["kind"] == kind
        clone = type(body).from_dict(json.loads(json.dumps(payload)))
        assert clone == body

    @pytest.mark.parametrize("kind", SERVE_KINDS)
    def test_schema_version_skew_rejected(self, baseline, kind):
        body = _serve_bodies(baseline)[kind]
        payload = body.to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaMismatchError):
            type(body).from_dict(payload)

    @pytest.mark.parametrize("kind", SERVE_KINDS)
    def test_wrong_kind_rejected(self, baseline, kind):
        body = _serve_bodies(baseline)[kind]
        payload = body.to_dict()
        payload["kind"] = "packed_evolution"
        with pytest.raises(SchemaMismatchError):
            type(body).from_dict(payload)

    def test_serve_stats_envelope_round_trips(self):
        from repro.flow.serialize import (
            serve_stats_from_dict,
            serve_stats_to_dict,
        )

        counters = {"requests": {"/diagnose": 3}, "batcher": {"shed": 0}}
        payload = serve_stats_to_dict(counters)
        assert payload["kind"] == "serve_stats"
        assert serve_stats_from_dict(json.loads(json.dumps(payload))) == counters

    def test_diagnose_response_checks_embedded_result(self, baseline):
        body = _serve_bodies(baseline)["diagnose_response"]
        payload = body.to_dict()
        payload["result"]["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaMismatchError):
            type(body).from_dict(payload)


class TestArtifactCacheRobustness:
    """The PR-7 bugfixes: corrupt entries are counted misses (never
    crashes), failed writes never orphan ``*.tmp`` files."""

    def _key_and_payload(self):
        key = ArtifactCache.key("pattern_set", digest="robust")
        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": "pattern_set",
            "circuit_name": "c17",
            "width": 5,
            "patterns": ["10101"],
        }
        return key, payload

    def test_truncated_json_is_corrupt_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key, payload = self._key_and_payload()
        cache.put(key, payload)
        (tmp_path / f"{key}.json").write_text('{"schema_version": 2, "ki')
        assert cache.get(key, "pattern_set") is None
        assert cache.corrupt_for("pattern_set") == 1
        assert cache.stats()["corrupt"] == 1
        assert cache.misses_for("pattern_set") == 1

    def test_valid_json_non_dict_is_corrupt_miss(self, tmp_path):
        """Regression: a JSON scalar/list used to crash ``get`` with an
        AttributeError inside ``check_schema``."""
        cache = ArtifactCache(tmp_path)
        key, _ = self._key_and_payload()
        (tmp_path / f"{key}.json").write_text("42")
        assert cache.get(key, "pattern_set") is None
        assert cache.corrupt_for("pattern_set") == 1

    def test_schema_mismatch_is_plain_miss_not_corrupt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key, payload = self._key_and_payload()
        payload["schema_version"] = SCHEMA_VERSION + 1
        cache.put(key, payload)
        assert cache.get(key, "pattern_set") is None
        assert cache.corrupt_for("pattern_set") == 0
        assert cache.misses_for("pattern_set") == 1

    def test_failed_replace_removes_tmp(self, tmp_path, monkeypatch):
        from pathlib import Path as _Path

        cache = ArtifactCache(tmp_path)
        key, payload = self._key_and_payload()

        def doomed(self, target):
            raise OSError("disk full")

        monkeypatch.setattr(_Path, "replace", doomed)
        with pytest.raises(OSError):
            cache.put(key, payload)
        monkeypatch.undo()
        assert not list(tmp_path.glob("*.tmp"))
        assert not (tmp_path / f"{key}.json").exists()

    def test_stale_tmp_swept_at_open(self, tmp_path):
        import os as _os
        import time as _time

        stale = tmp_path / "entry.json.1-0.tmp"
        stale.write_text("partial")
        _os.utime(stale, (_time.time() - 7200, _time.time() - 7200))
        fresh = tmp_path / "entry.json.2-0.tmp"
        fresh.write_text("live writer")
        cache = ArtifactCache(tmp_path, stale_tmp_age=3600)
        assert not stale.exists()
        assert fresh.exists()
        assert cache.swept_tmp == 1
        assert cache.stats()["swept_tmp"] == 1

    def test_concurrent_writers_use_distinct_tmp_names(self, tmp_path):
        a, b = ArtifactCache(tmp_path), ArtifactCache(tmp_path)
        path = tmp_path / "entry.json"
        assert a._tmp_path(path) != b._tmp_path(path)


class TestSession:
    def test_session_matches_pipeline(self, c17, baseline):
        session = Session(c17, config=CONFIG)
        result = session.run("adder")
        assert result.n_triplets == baseline.n_triplets
        assert result.test_length == baseline.test_length
        assert result.selected_triplets == baseline.selected_triplets

    def test_atpg_shared_across_tpgs(self, c17):
        session = Session(c17, config=CONFIG)
        a = session.run("adder")
        b = session.run("multiplier")
        assert a.atpg is session.atpg_result
        assert b.atpg is session.atpg_result

    def test_from_name_records_scale(self):
        session = Session.from_name("s27", scale=1.0, config=CONFIG)
        assert session.name == "s27"
        assert session.scale == 1.0

    def test_cache_miss_then_hit(self, tmp_path, baseline):
        cache = ArtifactCache(tmp_path)
        session = Session.from_name("c17", config=CONFIG, cache=cache)
        first = session.run("adder")
        assert cache.hits_for("pipeline_result") == 0
        assert cache.misses_for("pipeline_result") == 1

        # A brand-new session (fresh process simulation): full hit.
        cache2 = ArtifactCache(tmp_path)
        session2 = Session.from_name("c17", config=CONFIG, cache=cache2)
        second = session2.run("adder")
        assert cache2.hits_for("pipeline_result") == 1
        assert cache2.misses_for("atpg_result") == 0  # never even consulted
        assert second.n_triplets == first.n_triplets
        assert second.test_length == first.test_length
        assert second.selected_triplets == first.selected_triplets

    def test_warm_atpg_cache_skips_atpg(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        session = Session.from_name("c17", config=CONFIG, cache=cache)
        session.atpg_result
        assert cache.misses_for("atpg_result") == 1

        cache2 = ArtifactCache(tmp_path)
        warm = Session.from_name("c17", config=CONFIG, cache=cache2)
        events: list[StageEvent] = []
        warm.progress = events.append
        warm.atpg_result
        assert cache2.hits_for("atpg_result") == 1
        assert [e.status for e in events] == ["cache-hit"]

    def test_cache_key_varies_with_config_and_circuit(self):
        base = ArtifactCache.key("pipeline_result", circuit="c17", seed=1)
        assert base != ArtifactCache.key("pipeline_result", circuit="c17", seed=2)
        assert base != ArtifactCache.key("pipeline_result", circuit="s27", seed=1)
        assert base != ArtifactCache.key("atpg_result", circuit="c17", seed=1)
        assert base == ArtifactCache.key("pipeline_result", circuit="c17", seed=1)

    def test_corrupt_cache_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        session = Session.from_name("c17", config=CONFIG, cache=cache)
        session.run("adder")
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        cache2 = ArtifactCache(tmp_path)
        session2 = Session.from_name("c17", config=CONFIG, cache=cache2)
        result = session2.run("adder")
        assert cache2.hits == 0
        assert result.n_triplets >= 1

    def test_cache_key_distinguishes_scales(self, tmp_path):
        """Same catalog name at two scales must never share cache
        entries — the netlist fingerprint in the key separates them."""
        config = PipelineConfig(evolution_length=8, max_random_patterns=64)
        small = Session.from_name("s420", scale=0.15, config=config, cache=tmp_path)
        small_result = small.run("adder")
        big = Session.from_name(
            "s420", scale=0.5, config=config, cache=ArtifactCache(tmp_path)
        )
        big_result = big.run("adder")
        assert big.cache.hits == 0
        fresh = Session.from_name("s420", scale=0.5, config=config).run("adder")
        assert (big_result.n_triplets, big_result.test_length) == (
            fresh.n_triplets,
            fresh.test_length,
        )
        assert small.circuit_fingerprint != big.circuit_fingerprint
        assert small_result.circuit_name == big_result.circuit_name == "s420"

    def test_matrix_workers_does_not_invalidate_cache(self, tmp_path):
        """Performance-only knobs must not miss the result cache."""
        from dataclasses import replace

        Session.from_name("c17", config=CONFIG, cache=tmp_path).run("adder")
        warm = ArtifactCache(tmp_path)
        workers_config = replace(CONFIG, matrix_workers=4)
        session = Session.from_name("c17", config=workers_config, cache=warm)
        session.run("adder", config=workers_config)
        assert warm.hits_for("pipeline_result") == 1

    def test_atpg_memoized_per_knob_set(self, c17):
        """Two configs with different ATPG knobs cost exactly two ATPG
        runs regardless of how many TPG flows consume them."""
        from dataclasses import replace

        session = Session(c17, config=CONFIG)
        seed2 = replace(CONFIG, seed=CONFIG.seed + 1)
        a1 = session.run("adder").atpg
        m1 = session.run("multiplier").atpg
        a2 = session.run("adder", config=seed2).atpg
        m2 = session.run("multiplier", config=seed2).atpg
        assert a1 is m1
        assert a2 is m2
        assert a1 is not a2

    def test_use_cache_false_bypasses(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        session = Session.from_name("c17", config=CONFIG, cache=cache)
        session.run("adder")
        before = cache.hits
        session2 = Session.from_name("c17", config=CONFIG, cache=cache)
        session2.run("adder", use_cache=False)
        assert cache.hits_for("pipeline_result") == before


class TestSessionPackedPatterns:
    def _patterns(self, c17, n=40):
        from repro.utils.bitvec import BitVector
        from repro.utils.rng import RngStream

        rng = RngStream(7, "session-packed")
        return [BitVector.random(c17.n_inputs, rng) for _ in range(n)]

    def test_packed_patterns_coerces_and_passes_through(self, c17):
        session = Session(c17, config=CONFIG)
        patterns = self._patterns(c17)
        packed = session.packed_patterns(patterns)
        # An already-packed argument passes straight through (the
        # pack-once contract: callers hold on to the result).
        assert session.packed_patterns(packed) is packed
        assert packed.width == c17.n_inputs
        assert packed.unpack() == patterns

    def test_fault_dictionary_accepts_packed(self, c17, tmp_path):
        import numpy as np

        session = Session(c17, config=CONFIG, cache=ArtifactCache(tmp_path))
        patterns = self._patterns(c17)
        from_list = session.fault_dictionary(patterns)
        from_packed = session.fault_dictionary(session.packed_patterns(patterns))
        np.testing.assert_array_equal(from_list.matrix, from_packed.matrix)
        # List and packed arguments hash to the same cache key, so the
        # second build was a warm hit.
        assert session.cache.hits_for("fault_dictionary") == 1


class TestPackedEvolutionCache:
    """Session.packed_evolution: memory -> ArtifactCache -> compute."""

    def _bank(self, c17, n=6):
        from repro.tpg import make_tpg
        from repro.utils.bitvec import BitVector
        from repro.utils.rng import RngStream

        tpg = make_tpg("adder", c17.n_inputs)
        rng = RngStream(11, "evolution-cache")
        deltas = [BitVector.random(c17.n_inputs, rng) for _ in range(n)]
        sigmas = [tpg.suggest_sigma(rng) for _ in range(n)]
        return tpg, deltas, sigmas

    def test_identical_to_direct_evolution(self, c17, tmp_path):
        import numpy as np

        session = Session(c17, config=CONFIG, cache=ArtifactCache(tmp_path))
        tpg, deltas, sigmas = self._bank(c17)
        packed = session.packed_evolution(tpg, deltas, sigmas, 16)
        np.testing.assert_array_equal(
            packed.words, tpg.evolve_batch(deltas, sigmas, 16).words
        )
        # Second call in the same session is served from memory.
        assert session.packed_evolution(tpg, deltas, sigmas, 16) is packed

    def test_warm_process_loads_from_disk(self, c17, tmp_path):
        import numpy as np

        tpg, deltas, sigmas = self._bank(c17)
        cold = Session(c17, config=CONFIG, cache=ArtifactCache(tmp_path))
        packed = cold.packed_evolution(tpg, deltas, sigmas, 16)
        warm = Session(c17, config=CONFIG, cache=ArtifactCache(tmp_path))
        reloaded = warm.packed_evolution(tpg, deltas, sigmas, 16)
        assert warm.cache.hits_for("packed_evolution") == 1
        np.testing.assert_array_equal(reloaded.words, packed.words)
        assert reloaded.n_patterns == packed.n_patterns

    def test_key_varies_with_bank_length_and_tpg(self, c17):
        session = Session(c17, config=CONFIG)
        tpg, deltas, sigmas = self._bank(c17)
        base = session._evolution_key(tpg, deltas, sigmas, 16)
        assert session._evolution_key(tpg, deltas, sigmas, 17) != base
        assert session._evolution_key(tpg, deltas[:-1], sigmas[:-1], 16) != base
        from repro.tpg import make_tpg

        other = make_tpg("multiplier", c17.n_inputs)
        assert session._evolution_key(other, deltas, sigmas, 16) != base

    def test_session_run_populates_evolution_memo(self, c17):
        """A flow run through the session routes Matrix/Trim evolution
        through packed_evolution (the StageContext wiring)."""
        session = Session(c17, config=CONFIG)
        session.run("adder")
        assert session._evolutions  # matrix + trim banks memoized

    def test_uniform_solution_packed_patterns(self, c17, baseline):
        import numpy as np

        from repro.reseeding.uniform import uniformize_solution
        from repro.tpg import make_tpg

        tpg = make_tpg("adder", c17.n_inputs)
        uniform = uniformize_solution(baseline.trimmed)
        packed = uniform.packed_patterns(tpg)
        expected = uniform.solution.patterns(tpg)
        assert packed.unpack() == expected
        assert packed.n_patterns == uniform.test_length
        # The session provider slots in as the evolve hook.
        session = Session(c17, config=CONFIG)
        via_session = uniform.packed_patterns(tpg, evolve=session.packed_evolution)
        np.testing.assert_array_equal(via_session.words, packed.words)
