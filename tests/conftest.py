"""Shared fixtures: small reference circuits, deterministic RNG, and
three-valued (0/1/X) stimulus helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.circuits import load_circuit
from repro.utils.bitvec import X_CODE, PackedPlanes
from repro.utils.rng import RngStream


@pytest.fixture
def rng() -> RngStream:
    """A fresh deterministic stream per test."""
    return RngStream(12345, "tests")


@pytest.fixture(params=[2, 3], ids=["values2", "values3"])
def values(request) -> int:
    """Parametrize a test over both logic value systems.

    Suites that should hold verbatim under 2- and 3-valued simulation
    (the flow runs X-free, so results must match bit for bit) take this
    fixture and pass it through to ``PipelineConfig(values=...)`` or the
    simulator choice — no copy-paste parametrize decorators.
    """
    return request.param


def make_x_bank(
    n_inputs: int,
    n_patterns: int,
    x_fraction: float = 0.125,
    seed: int = 12345,
    *names: str | int,
) -> PackedPlanes:
    """A deterministic X-seeded pattern bank as packed planes.

    Codes are drawn 0/1 uniformly, then ``x_fraction`` of the positions
    are overwritten with X.  Same arguments -> same bank, so golden
    pins stay stable.
    """
    gen = np.random.default_rng(RngStream(seed, "x-bank", *names).getrandbits(64))
    codes = gen.integers(0, 2, size=(n_inputs, n_patterns)).astype(np.uint8)
    if x_fraction > 0:
        codes[gen.random(size=codes.shape) < x_fraction] = X_CODE
    return PackedPlanes.from_codes(codes)


@pytest.fixture
def x_bank():
    """Factory fixture for deterministic X-seeded pattern banks."""
    return make_x_bank


@pytest.fixture
def partial_scan_s420():
    """The s420 netlist with only half its flip-flops scanned: returns
    ``(view, x_inputs)`` — the unscanned flop outputs in ``x_inputs``
    must be driven with X."""
    from repro.circuit import partial_scan_view

    seq = load_circuit("s420", full_scan=False)
    dffs = sorted(
        g.name for g in seq.gates.values() if g.gtype is GateType.DFF
    )
    return partial_scan_view(seq, dffs[: len(dffs) // 2])


@pytest.fixture
def c17() -> Circuit:
    """The genuine c17 benchmark (5 PI, 2 PO, 6 NAND)."""
    return load_circuit("c17")


@pytest.fixture
def s27_scan() -> Circuit:
    """The genuine s27 benchmark in its full-scan view."""
    return load_circuit("s27")


@pytest.fixture
def tiny_and() -> Circuit:
    """y = a AND b — the smallest useful circuit."""
    return Circuit("tiny_and", ["a", "b"], ["y"], [Gate("y", GateType.AND, ("a", "b"))])


@pytest.fixture
def mux_circuit() -> Circuit:
    """A 2:1 mux: y = (a AND NOT s) OR (b AND s); exercises fanout + inversion."""
    return Circuit(
        "mux",
        ["a", "b", "s"],
        ["y"],
        [
            Gate("ns", GateType.NOT, ("s",)),
            Gate("t0", GateType.AND, ("a", "ns")),
            Gate("t1", GateType.AND, ("b", "s")),
            Gate("y", GateType.OR, ("t0", "t1")),
        ],
    )


@pytest.fixture
def xor_tree() -> Circuit:
    """A 4-input XOR tree; every stuck-at fault is detectable."""
    return Circuit(
        "xor4",
        ["a", "b", "c", "d"],
        ["y"],
        [
            Gate("x0", GateType.XOR, ("a", "b")),
            Gate("x1", GateType.XOR, ("c", "d")),
            Gate("y", GateType.XOR, ("x0", "x1")),
        ],
    )


@pytest.fixture
def redundant_circuit() -> Circuit:
    """y = a OR (a AND b): the AND gate is redundant, so several of its
    faults are untestable — exercises redundancy identification."""
    return Circuit(
        "redundant",
        ["a", "b"],
        ["y"],
        [
            Gate("t", GateType.AND, ("a", "b")),
            Gate("y", GateType.OR, ("a", "t")),
        ],
    )
