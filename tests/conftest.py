"""Shared fixtures: small reference circuits and deterministic RNG."""

from __future__ import annotations

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.circuits import load_circuit
from repro.utils.rng import RngStream


@pytest.fixture
def rng() -> RngStream:
    """A fresh deterministic stream per test."""
    return RngStream(12345, "tests")


@pytest.fixture
def c17() -> Circuit:
    """The genuine c17 benchmark (5 PI, 2 PO, 6 NAND)."""
    return load_circuit("c17")


@pytest.fixture
def s27_scan() -> Circuit:
    """The genuine s27 benchmark in its full-scan view."""
    return load_circuit("s27")


@pytest.fixture
def tiny_and() -> Circuit:
    """y = a AND b — the smallest useful circuit."""
    return Circuit("tiny_and", ["a", "b"], ["y"], [Gate("y", GateType.AND, ("a", "b"))])


@pytest.fixture
def mux_circuit() -> Circuit:
    """A 2:1 mux: y = (a AND NOT s) OR (b AND s); exercises fanout + inversion."""
    return Circuit(
        "mux",
        ["a", "b", "s"],
        ["y"],
        [
            Gate("ns", GateType.NOT, ("s",)),
            Gate("t0", GateType.AND, ("a", "ns")),
            Gate("t1", GateType.AND, ("b", "s")),
            Gate("y", GateType.OR, ("t0", "t1")),
        ],
    )


@pytest.fixture
def xor_tree() -> Circuit:
    """A 4-input XOR tree; every stuck-at fault is detectable."""
    return Circuit(
        "xor4",
        ["a", "b", "c", "d"],
        ["y"],
        [
            Gate("x0", GateType.XOR, ("a", "b")),
            Gate("x1", GateType.XOR, ("c", "d")),
            Gate("y", GateType.XOR, ("x0", "x1")),
        ],
    )


@pytest.fixture
def redundant_circuit() -> Circuit:
    """y = a OR (a AND b): the AND gate is redundant, so several of its
    faults are untestable — exercises redundancy identification."""
    return Circuit(
        "redundant",
        ["a", "b"],
        ["y"],
        [
            Gate("t", GateType.AND, ("a", "b")),
            Gate("y", GateType.OR, ("a", "t")),
        ],
    )
