"""Golden regression pins for the fault-simulation stack.

These constants were produced by the engines at the seed RNG and are
intentionally hard-coded: any future "optimization" that silently
changes fault coverage, detection counts, or Detection Matrix contents
for the catalog circuits fails here first.  If a change is *supposed*
to alter results (e.g. a new fault model), regenerate the constants and
say so in the commit.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.circuits import load_circuit
from repro.faults.model import full_fault_list
from repro.sim.fault import FaultSimulator, SerialFaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

N_GOLDEN_PATTERNS = 128
GOLDEN_SEED = 2001


@dataclass(frozen=True)
class GoldenStats:
    """Pinned per-circuit results at the seed RNG."""

    n_faults: int
    n_detected: int
    matrix_ones: int


GOLDEN: dict[str, GoldenStats] = {
    "c499": GoldenStats(n_faults=1198, n_detected=920, matrix_ones=29524),
    "c880": GoldenStats(n_faults=2282, n_detected=1679, matrix_ones=56070),
    "s420": GoldenStats(n_faults=1316, n_detected=439, matrix_ones=16918),
}


def _golden_workload(name: str):
    circuit = load_circuit(name)
    faults = full_fault_list(circuit)
    rng = RngStream(GOLDEN_SEED, "golden", name)
    patterns = [
        BitVector.random(circuit.n_inputs, rng) for _ in range(N_GOLDEN_PATTERNS)
    ]
    return circuit, faults, patterns


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_detection_matrix_pinned(name):
    circuit, faults, patterns = _golden_workload(name)
    expected = GOLDEN[name]
    assert len(faults) == expected.n_faults
    simulator = FaultSimulator(circuit)
    matrix = simulator.detection_matrix(patterns, faults)
    assert matrix.shape == (N_GOLDEN_PATTERNS, expected.n_faults)
    assert int(matrix.sum()) == expected.matrix_ones


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fault_coverage_pinned(name):
    circuit, faults, patterns = _golden_workload(name)
    expected = GOLDEN[name]
    simulator = FaultSimulator(circuit)
    flags = simulator.detected(patterns, faults)
    assert sum(flags) == expected.n_detected
    assert simulator.fault_coverage(patterns, faults) == pytest.approx(
        expected.n_detected / expected.n_faults
    )


#: First-detection-index pins for the *incremental-plan* scan path
#: (``drop_window_words=1`` forces a subset after every 64-pattern
#: window): number of detected faults plus the sum of all first
#: detection indices.  Together with the cold-path assertions below,
#: these pin the warm (plan-subsetting) and cold (full-build) paths to
#: each other — they can never diverge silently.
GOLDEN_FIRST_DETECTION: dict[str, tuple[int, int]] = {
    "c499": (920, 11328),
    "c880": (1679, 20111),
    "s420": (439, 4027),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_FIRST_DETECTION))
def test_incremental_plan_scan_pinned(name):
    """The fault-dropping scan (plans subset mid-run via index masks)
    reproduces the pinned first-detection indices, and a no-dropping
    cold-plan run agrees index-for-index."""
    from repro.sim.batch import BatchFaultSimulator

    circuit, faults, patterns = _golden_workload(name)
    expected_detected, expected_index_sum = GOLDEN_FIRST_DETECTION[name]
    warm = BatchFaultSimulator(circuit, drop_window_words=1)
    indices = warm.first_detection_index(patterns, faults)
    assert warm.plan_subsets > 0, "scan never exercised plan subsetting"
    detected = [index for index in indices if index is not None]
    assert len(detected) == expected_detected == GOLDEN[name].n_detected
    assert sum(detected) == expected_index_sum
    # Cold path: one window spanning the whole set => no dropping, every
    # plan built from scratch; must agree with the warm path bit-for-bit.
    cold = BatchFaultSimulator(circuit, drop_window_words=64)
    assert cold.first_detection_index(patterns, faults) == indices
    assert cold.plan_subsets == 0


#: End-to-end flow pins (scale 0.25, adder TPG, T=16, 512 random
#: patterns, seed 2001): Table-1's (#Triplets, TestLength) per circuit,
#: per ATPG top-off engine.  The ``recursive`` column must reproduce the
#: pre-stage pipeline implementation bit-identically; the ``batch``
#: column pins the fault-parallel PODEM path (different pattern order,
#: same downstream aggregates at this workload).
GOLDEN_PIPELINE: dict[str, dict[str, tuple[int, int]]] = {
    "recursive": {
        "c499": (4, 52),
        "c880": (7, 81),
        "s420": (1, 14),
    },
    "batch": {
        "c499": (4, 52),
        "c880": (7, 81),
        "s420": (1, 14),
    },
}

_PIPELINE_SCALE = 0.25


def _golden_pipeline_config(atpg_engine: str = "recursive"):
    from repro.flow.pipeline import PipelineConfig

    return PipelineConfig(
        evolution_length=16, max_random_patterns=512, atpg_engine=atpg_engine
    )


@pytest.mark.parametrize("engine", sorted(GOLDEN_PIPELINE))
@pytest.mark.parametrize("name", sorted(GOLDEN_PIPELINE["recursive"]))
def test_pipeline_results_pinned(name, engine):
    """`ReseedingPipeline.run()` through the stage machinery keeps the
    exact #Triplets / TestLength of the seed implementation."""
    from repro.flow.pipeline import ReseedingPipeline

    circuit = load_circuit(name, scale=_PIPELINE_SCALE)
    result = ReseedingPipeline(
        circuit, "adder", _golden_pipeline_config(engine)
    ).run()
    assert (result.n_triplets, result.test_length) == GOLDEN_PIPELINE[engine][name]
    assert result.atpg.measured_coverage == 1.0


@pytest.mark.parametrize("name", sorted(GOLDEN_PIPELINE["recursive"]))
def test_session_agrees_with_pipeline_pins(name):
    """The Session/stage path and a cache round trip reproduce the pins."""
    from repro.flow.session import Session

    session = Session.from_name(
        name, scale=_PIPELINE_SCALE, config=_golden_pipeline_config()
    )
    result = session.run("adder")
    assert (result.n_triplets, result.test_length) == GOLDEN_PIPELINE["recursive"][name]
    clone = type(result).from_dict(result.to_dict())
    assert (clone.n_triplets, clone.test_length) == GOLDEN_PIPELINE["recursive"][name]


#: Three-valued pins: the same circuits under an X-seeded pattern bank
#: (128 patterns, 12.5% of input bits forced to X at the seed RNG).
#: ``n_detected``/``matrix_ones`` pin the pessimistic plane-algebra
#: detection (strictly below the 2-valued numbers — X only loses
#: detections); ``n_masked``/``signature`` pin the X-masked MISR
#: compaction.  The X-free half of the contract needs no new constants:
#: ``test_threeval_x_free_matches_golden`` reuses ``GOLDEN`` verbatim.
@dataclass(frozen=True)
class GoldenThreeVal:
    """Pinned 3-valued results for one circuit's X-seeded bank."""

    n_detected: int
    matrix_ones: int
    x_count: int
    n_masked: int
    signature: str


GOLDEN_THREEVAL: dict[str, GoldenThreeVal] = {
    "c499": GoldenThreeVal(
        n_detected=729,
        matrix_ones=14232,
        x_count=695,
        n_masked=904,
        signature="01111110001101111100110001000010",
    ),
    "c880": GoldenThreeVal(
        n_detected=1138,
        matrix_ones=9745,
        x_count=961,
        n_masked=1444,
        signature="01011101110011011011110100",
    ),
    "s420": GoldenThreeVal(
        n_detected=404,
        matrix_ones=11277,
        x_count=546,
        n_masked=341,
        signature="11011101010001011",
    ),
}

_X_FRACTION = 0.125


def _golden_threeval_workload(name: str, x_bank):
    circuit = load_circuit(name)
    faults = full_fault_list(circuit)
    bank = x_bank(
        circuit.n_inputs, N_GOLDEN_PATTERNS, _X_FRACTION, GOLDEN_SEED,
        "golden-3v", name,
    )
    return circuit, faults, bank


@pytest.mark.parametrize("name", sorted(GOLDEN_THREEVAL))
def test_threeval_coverage_pinned(name, x_bank):
    from repro.sim.threeval import XFaultSimulator

    circuit, faults, bank = _golden_threeval_workload(name, x_bank)
    expected = GOLDEN_THREEVAL[name]
    assert bank.x_count() == expected.x_count
    simulator = XFaultSimulator(circuit)
    flags = simulator.detected(bank, faults)
    assert sum(flags) == expected.n_detected
    # Pessimism against the 2-valued pins: X never adds detections.
    assert expected.n_detected < GOLDEN[name].n_detected
    matrix = simulator.detection_matrix(bank, faults)
    assert int(matrix.sum()) == expected.matrix_ones
    assert expected.matrix_ones < GOLDEN[name].matrix_ones


@pytest.mark.parametrize("name", sorted(GOLDEN_THREEVAL))
def test_threeval_masked_signature_pinned(name, x_bank):
    from repro.sim.misr import x_masked_signature

    circuit, _, bank = _golden_threeval_workload(name, x_bank)
    expected = GOLDEN_THREEVAL[name]
    signature, n_masked = x_masked_signature(circuit, bank)
    assert n_masked == expected.n_masked
    assert signature.to_string() == expected.signature


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_threeval_x_free_matches_golden(name):
    """The 3-valued engine on the X-free golden patterns reproduces the
    2-valued pins exactly — same constants, different algebra."""
    from repro.sim.misr import golden_signature, x_masked_signature
    from repro.sim.threeval import XFaultSimulator
    from repro.utils.bitvec import as_planes, pack_patterns, PackedPatterns

    circuit, faults, patterns = _golden_workload(name)
    expected = GOLDEN[name]
    simulator = XFaultSimulator(circuit)
    packed = PackedPatterns(
        pack_patterns(patterns, circuit.n_inputs), len(patterns)
    )
    planes = as_planes(packed, circuit.n_inputs)
    assert sum(simulator.detected(planes, faults)) == expected.n_detected
    matrix = simulator.detection_matrix(planes, faults)
    assert int(matrix.sum()) == expected.matrix_ones
    masked, n_masked = x_masked_signature(circuit, planes)
    assert n_masked == 0
    assert masked == golden_signature(circuit, patterns)


@pytest.mark.parametrize("name", sorted(GOLDEN_PIPELINE["recursive"]))
def test_pipeline_values3_matches_pins(name):
    """``values=3`` through the full flow: the stimulus is X-free, so
    Table-1 aggregates must equal the 2-valued pins bit for bit."""
    from repro.flow.pipeline import PipelineConfig, ReseedingPipeline

    circuit = load_circuit(name, scale=_PIPELINE_SCALE)
    config = PipelineConfig(
        evolution_length=16, max_random_patterns=512, values=3
    )
    result = ReseedingPipeline(circuit, "adder", config).run()
    assert (result.n_triplets, result.test_length) == GOLDEN_PIPELINE["batch"][name]
    assert result.atpg.measured_coverage == 1.0


#: Effect-cause diagnosis pins (the 128 golden patterns, one injected
#: collapsed fault drawn at the seed RNG).  ``rank`` is the injected
#: fault's position in the ranking; 2 on c499 is real physics, not a
#: bug — the top candidate there is output-level indistinguishable from
#: the injected fault on this pattern set, and the tie breaks on fault
#: order.
@dataclass(frozen=True)
class GoldenDiagnosis:
    """Pinned diagnosis outcome for one injected-fault scenario."""

    injected: str
    top: str
    rank: int
    n_failing: int
    n_candidates: int


GOLDEN_DIAGNOSIS: dict[str, GoldenDiagnosis] = {
    "c499": GoldenDiagnosis(
        injected="g131/SA0",
        top="g110->g160.0/SA1",
        rank=2,
        n_failing=3,
        n_candidates=146,
    ),
    "c880": GoldenDiagnosis(
        injected="pi45->g40.1/SA1",
        top="pi45->g40.1/SA1",
        rank=1,
        n_failing=40,
        n_candidates=1139,
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_DIAGNOSIS))
def test_diagnosis_ranking_pinned(name):
    """Effect-cause diagnosis reproduces the pinned candidate ranking
    for a deterministic injected fault, and the injected fault is never
    ranked worse than third."""
    from repro.diagnosis import (
        choose_faults,
        diagnose_effect_cause,
        fault_representatives,
        make_fail_log,
    )
    from repro.faults.collapse import collapse_faults

    circuit, _, patterns = _golden_workload(name)
    expected = GOLDEN_DIAGNOSIS[name]
    collapsed = collapse_faults(circuit)
    simulator = FaultSimulator(circuit)
    detected = simulator.detected(patterns, collapsed)
    detectable = [f for f, flag in zip(collapsed, detected) if flag]
    target = choose_faults(
        detectable, 1, RngStream(GOLDEN_SEED, "golden-diagnosis", name)
    )[0]
    assert str(target) == expected.injected
    log = make_fail_log(circuit, patterns, target, simulator.compiled)
    result = diagnose_effect_cause(
        circuit, patterns, log.responses, faults=collapsed,
        simulator=simulator, top_k=5,
    )
    assert str(result.candidates[0].fault) == expected.top
    assert result.n_failing == expected.n_failing
    assert result.n_candidates_considered == expected.n_candidates
    rank = result.rank_of(fault_representatives(circuit)[target])
    assert rank == expected.rank
    assert rank <= 3


@pytest.mark.slow
def test_serial_engine_agrees_with_golden_c499():
    """The legacy baseline reproduces the same pinned numbers — the pins
    are engine-independent facts about the circuits, not batch-engine
    artefacts."""
    circuit, faults, patterns = _golden_workload("c499")
    expected = GOLDEN["c499"]
    simulator = SerialFaultSimulator(circuit)
    assert sum(simulator.detected(patterns, faults)) == expected.n_detected
    matrix = simulator.detection_matrix(patterns, faults)
    assert int(matrix.sum()) == expected.matrix_ones
