"""The serve subsystem: HTTP framing, micro-batching, the live server.

Three layers, tested bottom-up:

* :mod:`repro.serve.http11` — request parsing and response framing
  against hand-built byte streams;
* :mod:`repro.serve.batcher` — window/size/deadline semantics with a
  stub process callback (no sockets, no compute);
* the live :class:`~repro.serve.server.ReproServer` — a real listening
  socket on an ephemeral port, driven by :class:`~repro.serve.client.
  ServeClient`, including the acceptance contracts: served diagnosis
  payloads byte-identical to a local ``Session.diagnose``, concurrent
  requests fused by the batcher, 429 load shedding when the queue bound
  is hit, and a loss-free SIGTERM drain.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.diagnosis import make_fail_log
from repro.faults.collapse import collapse_faults
from repro.flow.serialize import diagnosis_result_to_dict, to_json
from repro.flow.session import Session
from repro.serve import (
    AtpgRequest,
    BackgroundServer,
    DeadlineExceededError,
    DiagnoseRequest,
    MicroBatcher,
    PendingWork,
    QueueFullError,
    ServeClient,
    ServeClientError,
    ServeConfig,
    SweepRequest,
)
from repro.serve.http11 import HttpError, read_request, response_bytes
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

# ----------------------------------------------------------------------
# HTTP/1.1 framing
# ----------------------------------------------------------------------


def _parse(data: bytes):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(main())


class TestHttp11:
    def test_parses_post_with_body(self):
        request = _parse(
            b"POST /diagnose HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 2\r\n"
            b"\r\n"
            b"{}"
        )
        assert request.method == "POST"
        assert request.target == "/diagnose"
        assert request.body == b"{}"
        assert request.headers["content-type"] == "application/json"
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"NOT-HTTP\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_version_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"GET / HTTP/2.0\r\n\r\n")
        assert excinfo.value.status == 400

    def test_post_without_length_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"POST /x HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 411

    def test_chunked_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert excinfo.value.status == 501

    def test_oversized_body_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"
            )
        assert excinfo.value.status == 413

    def test_peer_death_mid_body_returns_none(self):
        request = _parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal"
        )
        assert request is None

    def test_connection_close_disables_keep_alive(self):
        request = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        assert not _parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert _parse(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        ).keep_alive

    def test_response_bytes_frames_body(self):
        raw = response_bytes(
            429, b'{"e":1}', keep_alive=False,
            extra_headers=(("Retry-After", "1"),),
        )
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Retry-After: 1" in head
        assert b"Content-Length: 7" in head
        assert b"Connection: close" in head
        assert body == b'{"e":1}'


# ----------------------------------------------------------------------
# Micro-batcher semantics (stub compute)
# ----------------------------------------------------------------------


def _echo_process(groups_seen):
    async def process(group):
        groups_seen.append([w.payload for w in group])
        for work in group:
            if not work.future.done():
                work.future.set_result(work.payload)

    return process


def _work(loop, payload, group="g", ttl=30.0):
    return PendingWork(
        kind="t",
        group_key=group,
        payload=payload,
        future=loop.create_future(),
        enqueued=loop.time(),
        deadline=loop.time() + ttl,
    )


class TestMicroBatcher:
    def test_concurrent_submissions_fuse_into_one_group(self):
        groups = []

        async def main():
            batcher = MicroBatcher(
                process=_echo_process(groups), window_s=0.05, max_batch=8
            )
            batcher.start()
            loop = asyncio.get_running_loop()
            works = [_work(loop, i) for i in range(4)]
            for work in works:
                batcher.submit(work)
            results = await asyncio.gather(*(w.future for w in works))
            await batcher.close()
            return results

        assert asyncio.run(main()) == [0, 1, 2, 3]
        assert groups == [[0, 1, 2, 3]]

    def test_max_batch_caps_group_size(self):
        groups = []

        async def main():
            batcher = MicroBatcher(
                process=_echo_process(groups), window_s=5.0, max_batch=2
            )
            batcher.start()
            loop = asyncio.get_running_loop()
            works = [_work(loop, i) for i in range(5)]
            for work in works:
                batcher.submit(work)
            await asyncio.gather(*(w.future for w in works))
            await batcher.close()

        asyncio.run(main())
        assert [len(g) for g in groups] == [2, 2, 1]

    def test_groups_partition_by_key(self):
        groups = []

        async def main():
            batcher = MicroBatcher(
                process=_echo_process(groups), window_s=0.05, max_batch=8
            )
            batcher.start()
            loop = asyncio.get_running_loop()
            works = [_work(loop, i, group=f"g{i % 2}") for i in range(4)]
            for work in works:
                batcher.submit(work)
            await asyncio.gather(*(w.future for w in works))
            await batcher.close()

        asyncio.run(main())
        assert sorted(sorted(g) for g in groups) == [[0, 2], [1, 3]]

    def test_bounded_queue_sheds(self):
        async def main():
            batcher = MicroBatcher(
                process=_echo_process([]), window_s=0.01, max_queue=1
            )
            # Not started: nothing drains the queue, so the bound hits.
            loop = asyncio.get_running_loop()
            batcher.submit(_work(loop, 0))
            with pytest.raises(QueueFullError):
                batcher.submit(_work(loop, 1))
            assert batcher.stats.shed == 1

        asyncio.run(main())

    def test_expired_work_fails_with_deadline_error(self):
        async def main():
            batcher = MicroBatcher(process=_echo_process([]), window_s=0.01)
            batcher.start()
            loop = asyncio.get_running_loop()
            work = _work(loop, 0, ttl=-1.0)  # already expired
            batcher.submit(work)
            with pytest.raises(DeadlineExceededError):
                await work.future
            await batcher.close()
            assert batcher.stats.expired == 1

        asyncio.run(main())

    def test_close_drains_queued_work(self):
        groups = []

        async def main():
            batcher = MicroBatcher(
                process=_echo_process(groups), window_s=10.0, max_batch=8
            )
            batcher.start()
            loop = asyncio.get_running_loop()
            works = [_work(loop, i) for i in range(3)]
            for work in works:
                batcher.submit(work)
            await batcher.close()  # well before the 10 s window elapses
            return [w.future.result() for w in works]

        assert asyncio.run(main()) == [0, 1, 2]
        assert sum(len(g) for g in groups) == 3

    def test_process_exception_propagates_to_futures(self):
        async def main():
            async def process(group):
                raise RuntimeError("compute fell over")

            batcher = MicroBatcher(process=process, window_s=0.01)
            batcher.start()
            loop = asyncio.get_running_loop()
            work = _work(loop, 0)
            batcher.submit(work)
            with pytest.raises(RuntimeError, match="fell over"):
                await work.future
            await batcher.close()

        asyncio.run(main())


# ----------------------------------------------------------------------
# Live server end-to-end
# ----------------------------------------------------------------------


def _scenario(circuit_name="c17", n_patterns=24, seed=11):
    """A synthetic single-fault fail log plus its local session."""
    session = Session.from_name(circuit_name)
    circuit = session.circuit
    faults = collapse_faults(circuit)
    rng = RngStream(seed, "serve-test", circuit.name)
    patterns = [
        BitVector.random(circuit.n_inputs, rng) for _ in range(n_patterns)
    ]
    detected = session.simulator.detected(patterns, faults)
    target = next(f for f, flag in zip(faults, detected) if flag)
    log = make_fail_log(circuit, patterns, target, session.simulator.compiled)
    return session, patterns, log


@pytest.fixture(scope="module")
def scenario():
    return _scenario()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("serve-store")
    with BackgroundServer(
        ServeConfig(port=0, batch_window_ms=10.0, max_batch=8, store=store)
    ) as background:
        yield background


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


class TestServerEndpoints:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}

    def test_diagnose_byte_identical_to_session(self, client, scenario):
        session, patterns, log = scenario
        local = session.diagnose(log, method="dictionary", top_k=5)
        response = client.diagnose(
            DiagnoseRequest(
                circuit="c17",
                patterns=tuple(p.to_string() for p in patterns),
                responses=tuple(r.to_string() for r in log.responses),
                method="dictionary",
                top_k=5,
            )
        )
        assert to_json(response.result) == to_json(
            diagnosis_result_to_dict(local)
        )
        assert response.patterns_ref

    def test_patterns_ref_round_trip(self, client, scenario):
        session, patterns, log = scenario
        first = client.diagnose(
            DiagnoseRequest(
                circuit="c17",
                patterns=tuple(p.to_string() for p in patterns),
                responses=tuple(r.to_string() for r in log.responses),
            )
        )
        again = client.diagnose(
            DiagnoseRequest(
                circuit="c17",
                patterns_ref=first.patterns_ref,
                responses=tuple(r.to_string() for r in log.responses),
            )
        )
        assert again.patterns_ref == first.patterns_ref
        assert to_json(again.result) == to_json(first.result)

    def test_effect_cause_method_served(self, client, scenario):
        session, patterns, log = scenario
        local = session.diagnose(log, method="effect_cause", top_k=3)
        response = client.diagnose(
            DiagnoseRequest(
                circuit="c17",
                patterns=tuple(p.to_string() for p in patterns),
                responses=tuple(r.to_string() for r in log.responses),
                method="effect_cause",
                top_k=3,
            )
        )
        local_payload = diagnosis_result_to_dict(local)
        local_payload["timings"] = {}  # the only non-deterministic field
        assert to_json(response.result) == to_json(local_payload)

    def test_unknown_patterns_ref_rejected(self, client, scenario):
        _, _, log = scenario
        with pytest.raises(ServeClientError) as excinfo:
            client.diagnose(
                DiagnoseRequest(
                    circuit="c17",
                    patterns_ref="no-such-ref",
                    responses=tuple(r.to_string() for r in log.responses),
                )
            )
        assert excinfo.value.status == 400

    def test_invalid_method_rejected(self, client, scenario):
        _, patterns, log = scenario
        with pytest.raises(ServeClientError) as excinfo:
            client.diagnose(
                DiagnoseRequest(
                    circuit="c17",
                    patterns=tuple(p.to_string() for p in patterns),
                    responses=tuple(r.to_string() for r in log.responses),
                    method="tea-leaves",
                )
            )
        assert excinfo.value.status == 400

    def test_schema_version_skew_rejected(self, client, scenario):
        _, patterns, log = scenario
        payload = DiagnoseRequest(
            circuit="c17",
            patterns=tuple(p.to_string() for p in patterns),
            responses=tuple(r.to_string() for r in log.responses),
        ).to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/diagnose", payload)
        assert excinfo.value.status == 400

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/no-such")
        assert excinfo.value.status == 404

    def test_wrong_verb_405(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/diagnose")
        assert excinfo.value.status == 405

    def test_non_json_body_400(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request(
                "POST", "/diagnose", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["kind"] == "serve_error"
        finally:
            conn.close()

    def test_atpg_endpoint_and_memo(self, client):
        first = client.atpg(
            AtpgRequest(circuit="c17", max_random_patterns=64)
        )
        assert first.result["kind"] == "atpg_result"
        again = client.atpg(
            AtpgRequest(circuit="c17", max_random_patterns=64)
        )
        assert again.from_memo
        assert to_json(again.result) == to_json(first.result)

    def test_sweep_endpoint(self, client):
        response = client.sweep(
            SweepRequest(circuits=("c17",), evolution_lengths=(8,))
        )
        assert len(response.cells) == 1
        cell = response.cells[0]
        assert cell["circuit"] == "c17"
        assert cell["tpg"] == "adder"
        assert cell["n_triplets"] >= 1

    def test_stats_document(self, client, scenario):
        _, patterns, log = scenario
        client.diagnose(
            DiagnoseRequest(
                circuit="c17",
                patterns=tuple(p.to_string() for p in patterns),
                responses=tuple(r.to_string() for r in log.responses),
            )
        )
        stats = client.stats()
        assert stats["server"]["max_batch"] == 8
        assert stats["requests"]["/diagnose"] >= 1
        assert stats["batcher"]["submitted"] >= 1
        assert stats["pattern_sets"] >= 1
        assert any(s.startswith("c17@") for s in stats["sessions"])
        assert stats["store"]["worker_id"].startswith("pid-")


class TestServerConcurrency:
    def test_concurrent_requests_fuse_and_match_serial(self, scenario):
        session, patterns, log = scenario
        local_json = to_json(
            diagnosis_result_to_dict(
                session.diagnose(log, method="dictionary", top_k=5)
            )
        )
        with BackgroundServer(
            ServeConfig(port=0, batch_window_ms=120.0, max_batch=16)
        ) as background:
            # Register the pattern set and warm the dictionary first, so
            # the concurrent wave measures batching, not the cold build.
            with ServeClient(background.host, background.port) as warm:
                ref = warm.diagnose(
                    DiagnoseRequest(
                        circuit="c17",
                        patterns=tuple(p.to_string() for p in patterns),
                        responses=tuple(r.to_string() for r in log.responses),
                        top_k=5,
                    )
                ).patterns_ref

            def one_request(_):
                with ServeClient(background.host, background.port) as c:
                    return c.diagnose(
                        DiagnoseRequest(
                            circuit="c17",
                            patterns_ref=ref,
                            responses=tuple(
                                r.to_string() for r in log.responses
                            ),
                            top_k=5,
                        )
                    )

            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(pool.map(one_request, range(8)))
        assert all(to_json(r.result) == local_json for r in responses)
        # With a 120 ms window and 8 threads, the batcher must have
        # fused at least one multi-request group.
        assert max(r.batch_size for r in responses) > 1
        assert any(r.batched for r in responses)

    def test_queue_bound_sheds_with_429(self, scenario):
        _, patterns, log = scenario
        with BackgroundServer(
            ServeConfig(
                port=0, batch_window_ms=300.0, max_batch=1, max_queue=1
            )
        ) as background:
            responses_text = tuple(r.to_string() for r in log.responses)
            patterns_text = tuple(p.to_string() for p in patterns)

            def one_request(_):
                with ServeClient(background.host, background.port) as c:
                    try:
                        c.diagnose(
                            DiagnoseRequest(
                                circuit="c17",
                                patterns=patterns_text,
                                responses=responses_text,
                            )
                        )
                        return None
                    except ServeClientError as exc:
                        return exc

            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(one_request, range(8)))
        shed = [e for e in outcomes if e is not None and e.status == 429]
        assert shed, "queue bound never produced a 429"
        assert all(e.retry_after is not None for e in shed)

    def test_per_request_timeout_maps_to_504(self, scenario):
        _, patterns, log = scenario
        # A 500 ms batching window with a 50 ms request deadline: the
        # request expires while parked in the batcher.
        with BackgroundServer(
            ServeConfig(port=0, batch_window_ms=500.0, max_batch=64)
        ) as background:
            with ServeClient(background.host, background.port) as c:
                with pytest.raises(ServeClientError) as excinfo:
                    c.diagnose(
                        DiagnoseRequest(
                            circuit="c17",
                            patterns=tuple(p.to_string() for p in patterns),
                            responses=tuple(
                                r.to_string() for r in log.responses
                            ),
                            timeout_ms=50,
                        )
                    )
        assert excinfo.value.status == 504


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The supervisor contract: SIGTERM -> drain -> exit 0."""
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=repo_src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "repro serve listening on http://" in line
            host_port = line.split("http://", 1)[1].split()[0]
            host, port = host_port.rsplit(":", 1)
            with ServeClient(host, int(port)) as client:
                assert client.healthz() == {"status": "ok"}
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drained cleanly" in out

    def test_background_server_drain_completes_inflight(self, scenario):
        """Requests accepted before the drain still get answers."""
        _, patterns, log = scenario
        background = BackgroundServer(
            ServeConfig(port=0, batch_window_ms=200.0, max_batch=16)
        )
        background.__enter__()
        try:
            results = []

            def one_request():
                with ServeClient(background.host, background.port) as c:
                    results.append(
                        c.diagnose(
                            DiagnoseRequest(
                                circuit="c17",
                                patterns=tuple(
                                    p.to_string() for p in patterns
                                ),
                                responses=tuple(
                                    r.to_string() for r in log.responses
                                ),
                            )
                        )
                    )

            threads = [
                threading.Thread(target=one_request) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let the requests reach the batcher window
        finally:
            background.stop()  # drain while they are still parked
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 3
        assert all(r.result["kind"] == "diagnosis_result" for r in results)


# ----------------------------------------------------------------------
# GET /metrics
# ----------------------------------------------------------------------


class TestServeMetrics:
    def test_metrics_404_when_disabled(self, client):
        # The module-scope server runs without --metrics.
        with pytest.raises(ServeClientError) as excinfo:
            client.metrics()
        assert excinfo.value.status == 404
        assert "metrics" in excinfo.value.error.error

    def test_stats_and_metrics_agree_after_traffic(self, scenario, tmp_path):
        """Every counter in GET /stats appears in GET /metrics with the
        same value.  The comparison runs on the drained server (between
        two live scrapes each self-observes the other's request), after
        a scripted sequence covering 200/404/405 responses, batching,
        and store traffic."""
        from repro.obs import parse_prometheus_text, render_prometheus
        from repro.serve.server import ReproServer

        _, patterns, log = scenario
        background = BackgroundServer(
            ServeConfig(
                port=0,
                batch_window_ms=5.0,
                max_batch=8,
                store=tmp_path / "store",
                metrics=True,
            )
        )
        with background:
            with ServeClient(background.host, background.port) as c:
                for _ in range(3):
                    c.diagnose(
                        DiagnoseRequest(
                            circuit="c17",
                            patterns=tuple(p.to_string() for p in patterns),
                            responses=tuple(
                                r.to_string() for r in log.responses
                            ),
                            method="dictionary",
                        )
                    )
                c.atpg(AtpgRequest(circuit="c17", max_random_patterns=64))
                with pytest.raises(ServeClientError) as excinfo:
                    c._request("GET", "/no-such")
                assert excinfo.value.status == 404
                with pytest.raises(ServeClientError) as excinfo:
                    c._request("GET", "/diagnose")
                assert excinfo.value.status == 405
                c.healthz()
                # A live scrape parses cleanly mid-traffic.  /diagnose
                # saw 3 POSTs plus the 405 GET above.
                live = parse_prometheus_text(c.metrics())
                assert live['repro_serve_requests_total{path="/diagnose"}'] == 4
                assert live["repro_serve_submitted_total"] >= 4
        server = background.server
        stats = server.stats()
        series = parse_prometheus_text(
            render_prometheus(server.telemetry.metrics)
        )
        # requests{path}: unknown paths fold into the "other" label.
        expected_paths: dict[str, int] = {}
        for path, count in stats["requests"].items():
            label = path if path in ReproServer.KNOWN_PATHS else "other"
            expected_paths[label] = expected_paths.get(label, 0) + count
        for label, count in expected_paths.items():
            key = f'repro_serve_requests_total{{path="{label}"}}'
            assert series[key] == count, key
        for status, count in stats["responses"].items():
            key = f'repro_serve_responses_total{{status="{status}"}}'
            assert series[key] == count, key
        for stat_key, metric in {
            "submitted": "repro_serve_submitted_total",
            "batches": "repro_serve_batches_total",
            "batched_requests": "repro_serve_batched_requests_total",
            "expired": "repro_serve_deadline_expired_total",
            "shed": "repro_serve_shed_total",
        }.items():
            assert series[metric] == stats["batcher"][stat_key], metric
        # Store counters: per-kind metric series sum to the /stats totals.
        for outcome in ("hits", "misses", "corrupt"):
            total = sum(
                value
                for key, value in series.items()
                if key.startswith(f"repro_cache_{outcome}_total")
            )
            assert total == stats["store"][outcome], outcome
        # Latency histograms exist per exercised endpoint.
        assert series['repro_serve_request_seconds_count{path="/diagnose"}'] == 4
        assert series['repro_serve_request_seconds_bucket{path="/atpg",le="+Inf"}'] == 1
        # Kernel counters flowed up from the compute sessions.
        assert series["repro_sim_words_simulated_total"] > 0

    def test_compute_seconds_still_stamped_without_metrics(self, client, scenario):
        """The span helper keeps response timing live on the default
        (telemetry-off) worker."""
        _, patterns, log = scenario
        response = client.diagnose(
            DiagnoseRequest(
                circuit="c17",
                patterns=tuple(p.to_string() for p in patterns),
                responses=tuple(r.to_string() for r in log.responses),
            )
        )
        assert response.seconds > 0.0
        assert response.seconds == round(response.seconds, 6)
