"""Differential tests for word-parallel TPG evolution.

``evolve_batch`` must be bit-identical to the scalar ``evolve`` loop for
every registered generator at every width — the vectorized uint64 walks
(widths <= 64) and the scalar fallback (wider banks, custom TPGs without
a vectorized override) are exercised against the same oracle, including
the word-boundary widths the satellite audit calls out (1, 63, 64, 65)
and the ``TapSet`` fallback-polynomial path for widths absent from the
primitive table.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reseeding.triplet import ReseedingSolution, Triplet, packed_test_sets
from repro.tpg import make_tpg, tpg_names
from repro.tpg.base import TestPatternGenerator
from repro.tpg.lfsr import _PRIMITIVE_TAPS, Lfsr, MultiPolynomialLfsr, TapSet
from repro.utils.bitvec import (
    BitVector,
    PackedPatterns,
    concat_packed,
    ints_to_bitvectors,
    pack_patterns,
    pack_values,
)
from repro.utils.rng import RngStream

#: Word-boundary widths plus one table width, one fallback width and one
#: beyond-uint64 width (scalar-fallback path).
EDGE_WIDTHS = (1, 21, 63, 64, 65, 130)


def _bank(tpg: TestPatternGenerator, n_seeds: int, seed: int = 5):
    rng = RngStream(seed, "tpg-batch", tpg.name, str(tpg.width))
    deltas = [BitVector.random(tpg.width, rng) for _ in range(n_seeds)]
    sigmas = [tpg.suggest_sigma(rng) for _ in range(n_seeds)]
    return deltas, sigmas


@st.composite
def evolution_banks(draw):
    """(tpg, deltas, sigmas, length) across all generators and widths."""
    name = draw(st.sampled_from(tpg_names()))
    width = draw(st.integers(min_value=1, max_value=130))
    n_seeds = draw(st.integers(min_value=0, max_value=6))
    length = draw(st.integers(min_value=0, max_value=70))
    rnd = draw(st.randoms(use_true_random=False))
    tpg = make_tpg(name, width)
    deltas = [BitVector(rnd.getrandbits(width), width) for _ in range(n_seeds)]
    sigmas = [BitVector(rnd.getrandbits(width), width) for _ in range(n_seeds)]
    return tpg, deltas, sigmas, length


class TestBatchScalarDifferential:
    """evolve_batch == the scalar loop, bit for bit, for every TPG."""

    @given(evolution_banks())
    def test_batch_matches_scalar(self, bank):
        tpg, deltas, sigmas, length = bank
        batched = tpg.evolve_batch(deltas, sigmas, length)
        reference = tpg.evolve_batch_scalar(deltas, sigmas, length)
        assert batched.n_patterns == reference.n_patterns == len(deltas) * length
        assert batched.width == reference.width == tpg.width
        np.testing.assert_array_equal(batched.words, reference.words)

    @pytest.mark.parametrize("name", sorted(tpg_names()))
    @pytest.mark.parametrize("width", EDGE_WIDTHS)
    def test_word_boundary_widths(self, name, width):
        """Widths 1 / 63 / 64 / 65 straddle the uint64 carrier; 21 hits
        the LFSR fallback polynomial; 130 forces the scalar fallback."""
        tpg = make_tpg(name, width)
        deltas, sigmas = _bank(tpg, 4)
        batched = tpg.evolve_batch(deltas, sigmas, 37)
        np.testing.assert_array_equal(
            batched.words, tpg.evolve_batch_scalar(deltas, sigmas, 37).words
        )
        # Per-seed rows slice back out equal to the per-triplet loop.
        for index, (delta, sigma) in enumerate(zip(deltas, sigmas)):
            row = batched.slice(index * 37, (index + 1) * 37)
            assert row.unpack() == tpg.evolve(delta, sigma, 37)

    @pytest.mark.parametrize("name", sorted(tpg_names()))
    def test_first_pattern_is_delta(self, name):
        """The paper's tau='0' property survives batching."""
        tpg = make_tpg(name, 8)
        deltas, sigmas = _bank(tpg, 5)
        batched = tpg.evolve_batch(deltas, sigmas, 6)
        for index, delta in enumerate(deltas):
            assert batched.slice(index * 6, index * 6 + 1).unpack() == [delta]

    def test_empty_bank_and_zero_length(self):
        tpg = make_tpg("adder", 8)
        assert len(tpg.evolve_batch([], [], 5)) == 0
        deltas, sigmas = _bank(tpg, 3)
        assert len(tpg.evolve_batch(deltas, sigmas, 0)) == 0

    def test_validation(self):
        tpg = make_tpg("adder", 8)
        deltas, sigmas = _bank(tpg, 2)
        with pytest.raises(ValueError, match="differ in length"):
            tpg.evolve_batch(deltas, sigmas[:1], 4)
        with pytest.raises(ValueError, match="width"):
            tpg.evolve_batch([BitVector(0, 9), deltas[1]], sigmas, 4)
        with pytest.raises(ValueError, match="width"):
            tpg.evolve_batch(deltas, [sigmas[0], BitVector(0, 7)], 4)
        with pytest.raises(ValueError, match=">= 0"):
            tpg.evolve_batch(deltas, sigmas, -1)

    def test_custom_tpg_without_override_uses_fallback(self):
        """A custom generator gets a correct evolve_batch for free."""

        class Gray(TestPatternGenerator):
            def next_state(self, state, sigma):
                return state ^ BitVector(state.value >> 1, self.width) ^ sigma

        tpg = Gray(11)
        deltas, sigmas = _bank(tpg, 3)
        batched = tpg.evolve_batch(deltas, sigmas, 20)
        np.testing.assert_array_equal(
            batched.words, tpg.evolve_batch_scalar(deltas, sigmas, 20).words
        )


class TestLfsrBatch:
    def test_mp_lfsr_sigma_selects_polynomial_in_batch(self):
        """Each seed of the bank walks its own polynomial."""
        tpg = MultiPolynomialLfsr(8)
        delta = BitVector(0b10110101, 8)
        n = len(tpg.polynomials)
        bank = tpg.evolve_batch(
            [delta] * n, [BitVector(k, 8) for k in range(n)], 12
        )
        runs = {
            tuple(p.value for p in bank.slice(k * 12, (k + 1) * 12).unpack())
            for k in range(n)
        }
        assert len(runs) > 1  # distinct polynomials, distinct sequences
        for k in range(n):
            assert bank.slice(k * 12, (k + 1) * 12).unpack() == tpg.evolve(
                delta, BitVector(k, 8), 12
            )

    def test_custom_taps_cache_token_distinct(self):
        """Two LFSRs differing only in taps must never share cached
        evolutions (the Session keys on cache_token)."""
        a, b = Lfsr(8), Lfsr(8, taps=(7, 3))
        assert a.cache_token() != b.cache_token()
        assert MultiPolynomialLfsr(8).cache_token() != a.cache_token()


class TestTapSet:
    def test_table_widths_not_fallback(self):
        for width in (4, 8, 16, 64):
            tapset = TapSet.for_width(width)
            assert not tapset.fallback
            assert tapset.taps == _PRIMITIVE_TAPS[width]

    @pytest.mark.parametrize("width", [1, 21, 33, 130])
    def test_fallback_widths_synthesised(self, width):
        """Widths outside the primitive table take the dense fallback
        shape: valid, deduplicated taps flagged as fallback."""
        tapset = TapSet.for_width(width)
        assert tapset.fallback
        assert tapset.taps
        assert all(0 <= t < width for t in tapset.taps)
        assert len(set(tapset.taps)) == len(tapset.taps)

    def test_fallback_lfsr_batch_matches_scalar(self):
        """The fallback-polynomial path through the vectorized walk."""
        tpg = Lfsr(21)
        assert tpg.tapset.fallback
        deltas, sigmas = _bank(tpg, 6)
        np.testing.assert_array_equal(
            tpg.evolve_batch(deltas, sigmas, 50).words,
            tpg.evolve_batch_scalar(deltas, sigmas, 50).words,
        )

    def test_mask_matches_taps(self):
        tapset = TapSet.for_width(8)
        assert tapset.mask_int == sum(1 << t for t in tapset.taps)
        assert tapset.feedback(0b10101000) == (
            sum((0b10101000 >> t) & 1 for t in tapset.taps) & 1
        )

    def test_variants_distinct(self):
        assert TapSet.for_width(8, 1).taps != TapSet.for_width(8).taps

    def test_invalid_taps_rejected(self):
        with pytest.raises(ValueError):
            TapSet((9,), 4)
        with pytest.raises(ValueError):
            TapSet((), 4)
        with pytest.raises(ValueError):
            TapSet((2, 2), 4)


class TestPackValues:
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=140),
    )
    def test_matches_pack_patterns(self, width, raw):
        values = [v & ((1 << width) - 1) for v in raw]
        fast = pack_values(np.array(values, dtype=np.uint64), width)
        reference = pack_patterns(ints_to_bitvectors(values, width), width)
        assert fast.dtype == np.uint64
        np.testing.assert_array_equal(fast, reference)

    def test_rejects_wide_widths_and_values(self):
        with pytest.raises(ValueError, match="widths 1..64"):
            pack_values(np.zeros(1, dtype=np.uint64), 65)
        with pytest.raises(ValueError, match="does not fit"):
            pack_values(np.array([4], dtype=np.uint64), 2)

    def test_from_values_roundtrip(self):
        values = np.arange(70, dtype=np.uint64)
        packed = PackedPatterns.from_values(values, 7)
        assert packed.unpack() == ints_to_bitvectors(range(70), 7)


class TestConcatPacked:
    def _pieces(self, counts, width=9):
        pieces, flat, base = [], [], 0
        for count in counts:
            patterns = [
                BitVector((base + i) * 0x9E37 & ((1 << width) - 1), width)
                for i in range(count)
            ]
            base += count
            flat.extend(patterns)
            pieces.append(PackedPatterns.from_patterns(patterns, width))
        return pieces, flat

    @pytest.mark.parametrize(
        "counts", [[1], [64], [3, 5], [63, 1, 64], [65, 33, 7], [0, 5, 0]]
    )
    def test_matches_flat_pack(self, counts):
        pieces, flat = self._pieces(counts)
        combined = concat_packed(pieces)
        reference = PackedPatterns.from_patterns(flat, 9)
        assert combined.n_patterns == len(flat)
        np.testing.assert_array_equal(combined.words, reference.words)

    def test_unaligned_slices_concat_safely(self):
        """Slices of a bank carry stray neighbour bits past n_patterns;
        concat must mask them off."""
        tpg = make_tpg("adder", 6)
        deltas, sigmas = _bank(tpg, 4)
        bank = tpg.evolve_batch(deltas, sigmas, 33)
        rows = [bank.slice(i * 33, (i + 1) * 33) for i in range(4)]
        np.testing.assert_array_equal(
            concat_packed(rows).words, bank.words
        )

    def test_width_mismatch_and_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            concat_packed([])
        a = PackedPatterns.from_patterns([BitVector(1, 3)], 3)
        b = PackedPatterns.from_patterns([BitVector(1, 4)], 4)
        with pytest.raises(ValueError, match="width mismatch"):
            concat_packed([a, b])
        empty = concat_packed([a.slice(0, 0)])
        assert len(empty) == 0 and empty.width == 3


class TestPackedTestSets:
    def test_mixed_lengths_match_scalar(self):
        tpg = make_tpg("multiplier", 10)
        rng = RngStream(3, "pts")
        triplets = [
            Triplet(
                BitVector.random(10, rng), tpg.suggest_sigma(rng), length
            )
            for length in (5, 12, 5, 0, 64, 12)
        ]
        rows = packed_test_sets(tpg, triplets)
        assert len(rows) == len(triplets)
        for triplet, row in zip(triplets, rows):
            assert row.unpack() == triplet.test_set(tpg)

    def test_shared_length_single_bank_call(self):
        """The common case (all candidates share T) pays one
        evolve_batch call for the whole pool."""
        tpg = make_tpg("adder", 8)
        rng = RngStream(4, "pts-shared")
        triplets = [
            Triplet(BitVector.random(8, rng), tpg.suggest_sigma(rng), 16)
            for _ in range(9)
        ]
        calls: list[int] = []

        def counting_evolve(generator, deltas, sigmas, length):
            calls.append(len(deltas))
            return generator.evolve_batch(deltas, sigmas, length)

        rows = packed_test_sets(tpg, triplets, evolve=counting_evolve)
        assert calls == [9]
        for triplet, row in zip(triplets, rows):
            assert row.unpack() == triplet.test_set(tpg)

    def test_triplet_packed_test_set(self):
        tpg = make_tpg("subtracter", 8)
        triplet = Triplet(BitVector(200, 8), BitVector(3, 8), 10)
        assert triplet.packed_test_set(tpg).unpack() == triplet.test_set(tpg)

    def test_solution_packed_patterns(self):
        tpg = make_tpg("adder", 8)
        rng = RngStream(9, "sol")
        solution = ReseedingSolution.from_list(
            [
                Triplet(BitVector.random(8, rng), tpg.suggest_sigma(rng), t)
                for t in (7, 3, 19)
            ]
        )
        packed = solution.packed_patterns(tpg)
        assert packed.unpack() == solution.patterns(tpg)
        empty = ReseedingSolution(()).packed_patterns(tpg)
        assert len(empty) == 0 and empty.width == 8


class TestNetlistTpgCacheToken:
    def test_same_name_different_structure_distinct_tokens(self):
        """Two same-named netlists with different gates must never share
        cached evolutions."""
        from repro.circuit.gates import GateType
        from repro.circuit.netlist import Circuit, Gate
        from repro.tpg.hardware import NetlistTpg, adder_accumulator_netlist

        a = adder_accumulator_netlist(3, name="tpg")
        b_netlist = adder_accumulator_netlist(3, name="tpg")
        # Same interface and name, one gate function changed.
        gates = [
            Gate(g.name, GateType.OR if g.gtype is GateType.AND else g.gtype, g.fanins)
            for g in b_netlist.gates.values()
        ]
        b = Circuit("tpg", list(b_netlist.inputs), list(b_netlist.outputs), gates)
        tpg_a, tpg_b = NetlistTpg(a, 3), NetlistTpg(b, 3)
        assert tpg_a.name == tpg_b.name
        assert tpg_a.cache_token() != tpg_b.cache_token()
        # Identical structure => identical token (cache still shareable).
        assert (
            NetlistTpg(adder_accumulator_netlist(3, name="tpg"), 3).cache_token()
            == tpg_a.cache_token()
        )
