"""Contract tests for the public API surface.

A downstream user's first contact is ``import repro``; these tests pin
the promises that imports make: every exported name resolves, carries a
docstring, and the package metadata is consistent.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.atpg",
    "repro.circuit",
    "repro.circuits",
    "repro.diagnosis",
    "repro.experiments",
    "repro.faults",
    "repro.flow",
    "repro.gatsby",
    "repro.obs",
    "repro.reseeding",
    "repro.serve",
    "repro.setcover",
    "repro.sim",
    "repro.tpg",
    "repro.utils",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_unique(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_exports_are_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_importable_with_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_declared_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


class TestPublicClassesDocumented:
    @pytest.mark.parametrize(
        "cls_name",
        [
            "AtpgEngine",
            "BitVector",
            "CompiledCircuit",
            "CoverMatrix",
            "Circuit",
            "DetectionMatrix",
            "Fault",
            "FaultSimulator",
            "GatsbyReseeder",
            "InitialReseedingBuilder",
            "PipelineConfig",
            "Podem",
            "ReseedingPipeline",
            "Triplet",
        ],
    )
    def test_public_methods_documented(self, cls_name):
        cls = getattr(repro, cls_name)
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member) or isinstance(member, property):
                doc = (
                    member.fget.__doc__
                    if isinstance(member, property)
                    else member.__doc__
                )
                assert doc, f"{cls_name}.{name} lacks a docstring"
