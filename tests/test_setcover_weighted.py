"""Tests for cost-weighted set covering (the minimum-test-length
objective extension)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.setcover import (
    CoverMatrix,
    branch_and_bound,
    greedy_cover,
    ilp_cover,
    reduce_matrix,
    solve_cover,
)


def _weighted_instance():
    """Columns {0,1,2}; a big expensive row vs two cheap small ones."""
    matrix = CoverMatrix.from_row_sets(
        {
            0: {0, 1, 2},  # covers everything
            1: {0, 1},
            2: {2},
            3: {1, 2},
        }
    )
    costs = {0: 10.0, 1: 2.0, 2: 1.0, 3: 2.0}
    return matrix, costs


def _brute_optimum(matrix, costs):
    rows = sorted(matrix.rows)
    best = None
    for size in range(len(rows) + 1):
        for combo in itertools.combinations(rows, size):
            if matrix.validate_solution(combo):
                cost = sum(costs[r] for r in combo)
                if best is None or cost < best:
                    best = cost
    return best


class TestWeightedSolvers:
    def test_cardinality_vs_cost_optimum_differ(self):
        matrix, costs = _weighted_instance()
        cardinality = branch_and_bound(matrix)
        weighted = branch_and_bound(matrix, costs=costs)
        assert len(cardinality.selected) == 1  # the big row
        # cost optimum avoids the 10.0 row: {1, 2} costs 3.0
        assert sum(costs[r] for r in weighted.selected) == 3.0

    def test_ilp_weighted_matches_bnb(self):
        matrix, costs = _weighted_instance()
        ilp = ilp_cover(matrix, costs=costs)
        bnb = branch_and_bound(matrix, costs=costs)
        assert sum(costs[r] for r in ilp.selected) == sum(
            costs[r] for r in bnb.selected
        )
        assert ilp.optimal

    def test_greedy_weighted_is_valid(self):
        matrix, costs = _weighted_instance()
        selected = greedy_cover(matrix, costs)
        assert matrix.validate_solution(selected)

    def test_missing_costs_rejected(self):
        matrix, costs = _weighted_instance()
        del costs[3]
        with pytest.raises(ValueError, match="missing"):
            branch_and_bound(matrix, costs=costs)

    def test_nonpositive_costs_rejected(self):
        matrix, costs = _weighted_instance()
        costs[0] = 0.0
        with pytest.raises(ValueError):
            branch_and_bound(matrix, costs=costs)
        with pytest.raises(ValueError):
            ilp_cover(matrix, costs=costs)

    def test_solve_cover_weighted(self):
        matrix, costs = _weighted_instance()
        solution = solve_cover(matrix, costs=costs)
        assert sum(costs[r] for r in solution.selected) == 3.0
        assert solution.stats.optimal

    def test_grasp_rejects_costs(self):
        matrix, costs = _weighted_instance()
        with pytest.raises(ValueError, match="grasp"):
            solve_cover(matrix, method="grasp", costs=costs)


class TestWeightedReduction:
    def test_cheap_subset_row_survives(self):
        """Under costs, a subset row cheaper than its superset must NOT
        be removed by row dominance."""
        matrix = CoverMatrix.from_row_sets({0: {0, 1}, 1: {0, 1, 2}, 2: {2}})
        costs = {0: 1.0, 1: 5.0, 2: 1.0}
        reduction = reduce_matrix(matrix, costs=costs)
        survivors = set(reduction.core.rows) | set(reduction.essential_rows)
        assert 0 in survivors

    def test_equal_cost_subset_removed(self):
        matrix = CoverMatrix.from_row_sets({0: {0, 1}, 1: {0, 1, 2}, 2: {2}})
        costs = {0: 5.0, 1: 5.0, 2: 1.0}
        reduction = reduce_matrix(matrix, costs=costs)
        assert 0 in reduction.dominated_rows


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    n_rows=st.integers(min_value=1, max_value=6),
    n_columns=st.integers(min_value=1, max_value=7),
)
def test_weighted_bnb_matches_brute_force(data, n_rows, n_columns):
    rows = {}
    for row_id in range(n_rows):
        rows[row_id] = set(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_columns - 1),
                    max_size=n_columns,
                ),
                label=f"row{row_id}",
            )
        )
    matrix = CoverMatrix.from_row_sets(rows, n_columns=n_columns)
    for column in matrix.uncoverable_columns():
        fixer = data.draw(
            st.integers(min_value=0, max_value=n_rows - 1), label=f"fix{column}"
        )
        matrix.rows[fixer].add(column)
        matrix.columns[column].add(fixer)
    costs = {
        row_id: float(
            data.draw(st.integers(min_value=1, max_value=9), label=f"cost{row_id}")
        )
        for row_id in range(n_rows)
    }
    expected = _brute_optimum(matrix, costs)
    bnb = branch_and_bound(matrix, costs=costs)
    ilp = ilp_cover(matrix, costs=costs)
    assert sum(costs[r] for r in bnb.selected) == expected
    assert sum(costs[r] for r in ilp.selected) == pytest.approx(expected)
    assert matrix.validate_solution(bnb.selected)
    assert matrix.validate_solution(ilp.selected)
