"""Differential and property tests for the fault-parallel PODEM stack.

Three layers, each pinned to an independent reference:

* the five-valued plane algebra (:mod:`repro.atpg.values5`) against a
  truth-table evaluator written here from the D-algebra definition;
* :class:`~repro.atpg.batch_podem.BatchPodem` against the recursive
  :class:`~repro.atpg.podem.Podem` oracle — the batch engine borrows the
  oracle's objective/backtrace per lane and only replaces implication,
  so the two must agree **bit for bit**: same statuses, same cubes, same
  backtrack and decision counts.  (This is strictly stronger than the
  required contract — DETECTED/UNTESTABLE equal, ABORTED allowed to
  differ only toward more detections — so that contract holds a
  fortiori.)
* the full :class:`~repro.atpg.engine.AtpgEngine` at both engine
  settings: measured (re-simulated, not assumed) coverage of 1.0 over
  the target fault list, equal untestable sets, and pinned aggregates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.batch_podem import BatchPodem
from repro.atpg.engine import AtpgEngine
from repro.atpg.podem import Podem
from repro.atpg.values5 import (
    X3,
    codes_from_planes,
    not_planes,
    planes_from_codes,
    reduce_gate_planes,
    reduceat_gate_planes,
)
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.circuits import load_circuit
from repro.faults.collapse import collapse_faults

# ---------------------------------------------------------------------------
# values5: plane algebra vs a from-the-definition reference
# ---------------------------------------------------------------------------

PLANE_TYPES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
]

_INVERTING = {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}


def _ref_gate3(gtype: GateType, codes: list[int]) -> int:
    """Three-valued gate semantics, straight from the D-algebra: a
    controlling value decides regardless of X; XOR is X if any fanin is."""
    if gtype in (GateType.AND, GateType.NAND):
        if 0 in codes:
            out = 0
        elif X3 in codes:
            out = X3
        else:
            out = 1
    elif gtype in (GateType.OR, GateType.NOR):
        if 1 in codes:
            out = 1
        elif X3 in codes:
            out = X3
        else:
            out = 0
    elif gtype in (GateType.XOR, GateType.XNOR):
        out = X3 if X3 in codes else sum(codes) % 2
    else:  # NOT / BUF
        out = codes[0]
    if gtype in _INVERTING and out != X3:
        out = 1 - out
    return out


codes3 = st.integers(min_value=0, max_value=2)


@settings(max_examples=60, deadline=None)
@given(codes=st.lists(codes3, min_size=1, max_size=200))
def test_planes_roundtrip(codes):
    v, c = planes_from_codes(np.array(codes, dtype=np.uint8))
    assert np.all(v & ~c == 0), "value bits must be 0 where care is 0"
    back = codes_from_planes(v, c, len(codes))
    assert back.tolist() == codes


@settings(max_examples=120, deadline=None)
@given(
    gtype=st.sampled_from(PLANE_TYPES),
    fanin_codes=st.lists(
        st.lists(codes3, min_size=1, max_size=70), min_size=1, max_size=5
    ).filter(lambda rows: len({len(r) for r in rows}) == 1),
)
def test_reduce_gate_planes_matches_reference(gtype, fanin_codes):
    if gtype in (GateType.NOT, GateType.BUF):
        fanin_codes = fanin_codes[:1]
    stacked = np.array(fanin_codes, dtype=np.uint8)  # (arity, n_lanes)
    v, c = planes_from_codes(stacked)
    out_v, out_c = reduce_gate_planes(gtype, v, c, axis=0)
    assert np.all(out_v & ~out_c == 0)
    got = codes_from_planes(out_v, out_c, stacked.shape[1])
    expected = [
        _ref_gate3(gtype, list(stacked[:, lane]))
        for lane in range(stacked.shape[1])
    ]
    assert got.tolist() == expected


@settings(max_examples=80, deadline=None)
@given(
    gtype=st.sampled_from(PLANE_TYPES),
    arities=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_reduceat_matches_reduce(gtype, arities, seed):
    """The segmented (ragged-arity) reduction agrees gate by gate with
    the rectangular one the simulator uses."""
    if gtype in (GateType.NOT, GateType.BUF):
        arities = [1] * len(arities)
    rng = np.random.default_rng(seed)
    n_lanes = 130  # forces 3 words incl. a partial tail
    flat_codes = rng.integers(0, 3, size=(sum(arities), n_lanes)).astype(np.uint8)
    v, c = planes_from_codes(flat_codes)
    starts = np.cumsum([0] + arities[:-1]).astype(np.int64)
    out_v, out_c = reduceat_gate_planes(gtype, v, c, starts)
    row = 0
    for gate, arity in enumerate(arities):
        ref_v, ref_c = reduce_gate_planes(
            gtype, v[row : row + arity], c[row : row + arity], axis=0
        )
        assert np.array_equal(out_v[gate], ref_v)
        assert np.array_equal(out_c[gate], ref_c)
        row += arity


def test_not_planes_involution():
    rng = np.random.default_rng(7)
    codes = rng.integers(0, 3, size=100).astype(np.uint8)
    v, c = planes_from_codes(codes)
    back_v, back_c = not_planes(*not_planes(v, c))
    assert np.array_equal(back_v, v) and np.array_equal(back_c, c)


# ---------------------------------------------------------------------------
# BatchPodem vs the recursive oracle: bit-for-bit agreement
# ---------------------------------------------------------------------------

circuits = st.builds(
    generate_circuit,
    st.builds(
        GeneratorSpec,
        name=st.just("prop"),
        n_inputs=st.integers(min_value=2, max_value=10),
        n_outputs=st.integers(min_value=1, max_value=4),
        n_gates=st.integers(min_value=5, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31),
    ),
)


def _result_key(result):
    return (
        result.status,
        result.cube.assignments if result.cube is not None else None,
        result.backtracks,
        result.decisions,
    )


def _assert_streams_identical(circuit, faults, **batch_kwargs):
    oracle = Podem(circuit)
    expected = {fault: _result_key(oracle.generate(fault)) for fault in faults}
    podem = BatchPodem(circuit, **batch_kwargs)
    got = {fault: _result_key(result) for fault, result in podem.stream(faults)}
    assert set(got) == set(expected)
    for fault in faults:
        assert got[fault] == expected[fault], f"{fault} diverged"


@settings(max_examples=25, deadline=None)
@given(circuit=circuits)
def test_batch_podem_matches_oracle_generated(circuit):
    """Every collapsed fault of a random circuit resolves identically —
    with the scalar tail-finish disabled, so the vector implication and
    per-lane search machinery carry every fault end to end."""
    faults = collapse_faults(circuit)
    _assert_streams_identical(
        circuit, faults, batch_size=64, scalar_tail_lanes=0
    )


@pytest.mark.parametrize("name", ["c499", "s420", "s1238"])
def test_batch_podem_matches_oracle_catalog(name):
    circuit = load_circuit(name, scale=0.25)
    faults = collapse_faults(circuit)
    _assert_streams_identical(circuit, faults)


def test_batch_podem_single_fault_generate():
    """``generate`` (the one-fault convenience wrapper) matches too."""
    circuit = load_circuit("c17")
    oracle = Podem(circuit)
    podem = BatchPodem(circuit)
    for fault in collapse_faults(circuit):
        assert _result_key(podem.generate(fault)) == _result_key(
            oracle.generate(fault)
        )


def test_batch_podem_drop_skips_faults():
    """Faults dropped mid-stream never surface; the rest still resolve
    identically to the oracle."""
    circuit = load_circuit("s420", scale=0.25)
    faults = collapse_faults(circuit)
    podem = BatchPodem(circuit, batch_size=64)
    resolved = {}
    dropped: set = set()
    for fault, result in podem.stream(faults):
        resolved[fault] = result
        if not dropped:
            # After the first yield, retire a third of the outstanding
            # work — some still queued, some mid-search in lanes.
            dropped = set(
                (podem.queued_faults() + podem.active_faults())[::3]
            )
            podem.drop(dropped)
    assert dropped and not dropped & set(resolved)
    oracle = Podem(circuit)
    for fault, result in resolved.items():
        assert _result_key(result) == _result_key(oracle.generate(fault))


# ---------------------------------------------------------------------------
# the full engine: measured coverage, both top-off paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["c499", "c880", "s420"])
def test_engine_equal_coverage(name):
    """Both engines produce a complete covering (measured, not assumed)
    and agree on the untestable set — untestable faults can never be
    fault-dropped, so the engines must classify them identically."""
    circuit = load_circuit(name, scale=0.25)
    results = {
        engine: AtpgEngine(
            circuit, max_random_patterns=512, engine=engine
        ).run()
        for engine in ("batch", "recursive")
    }
    for result in results.values():
        assert result.measured_coverage == 1.0
        assert result.fault_coverage == 1.0
    assert set(results["batch"].untestable) == set(results["recursive"].untestable)
    assert set(results["batch"].target_faults) >= (
        set(results["recursive"].target_faults)
        - set(results["recursive"].aborted)
        - set(results["batch"].aborted)
    )


#: Pinned engine aggregates at a 64-pattern random budget (so the
#: deterministic top-off actually runs): (test length, |F|, untestable,
#: aborted, podem patterns, random patterns kept).  Identical for both
#: engines at this workload.
ENGINE_PINS = {
    "c499": (21, 185, 31, 0, 6, 21),
    "s420": (7, 94, 125, 0, 0, 9),
}


@pytest.mark.parametrize("engine", ["batch", "recursive"])
@pytest.mark.parametrize("name", sorted(ENGINE_PINS))
def test_engine_aggregates_pinned(name, engine):
    circuit = load_circuit(name, scale=0.25)
    result = AtpgEngine(circuit, max_random_patterns=64, engine=engine).run()
    assert (
        result.test_length,
        len(result.target_faults),
        len(result.untestable),
        len(result.aborted),
        result.podem_patterns,
        result.random_patterns_kept,
    ) == ENGINE_PINS[name]
    assert result.measured_coverage == 1.0


def test_engine_vacuous_coverage():
    """An empty target list is vacuously covered (1.0, not 0.0)."""
    circuit = load_circuit("c17")
    for engine in ("batch", "recursive"):
        result = AtpgEngine(circuit, engine=engine).run(faults=[])
        assert result.fault_coverage == 1.0
        assert result.measured_coverage == 1.0
        assert result.target_faults == []


def test_engine_rejects_unknown_engine():
    circuit = load_circuit("c17")
    with pytest.raises(ValueError, match="unknown ATPG engine"):
        AtpgEngine(circuit, engine="quantum")


def test_result_roundtrip_preserves_measured_coverage():
    """The schema-v2 dict form carries the measured coverage."""
    circuit = load_circuit("c17")
    result = AtpgEngine(circuit).run()
    clone = type(result).from_dict(result.to_dict())
    assert clone.measured_coverage == result.measured_coverage == 1.0
    assert clone.test_set == result.test_set
