"""Property-based tests for the covering engine.

The key soundness claims:

* reduction never changes the optimum (essentials + optimal core
  solution is optimal for the original instance);
* the combinatorial B&B and the LP-based ILP solver agree with brute
  force on every feasible instance;
* every solver always returns a valid cover.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.setcover import (
    CoverMatrix,
    branch_and_bound,
    grasp_cover,
    greedy_cover,
    ilp_cover,
    reduce_matrix,
    solve_cover,
)


@st.composite
def feasible_instances(draw, max_rows=8, max_columns=10):
    """Random boolean matrices where every column is coverable."""
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    n_columns = draw(st.integers(min_value=1, max_value=max_columns))
    bits = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n_columns, max_size=n_columns),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    array = np.array(bits, dtype=bool)
    # Force feasibility: give uncovered columns one random row.
    for column in range(n_columns):
        if not array[:, column].any():
            row = draw(st.integers(min_value=0, max_value=n_rows - 1))
            array[row, column] = True
    return CoverMatrix.from_bool_array(array)


def _brute_force_optimum(matrix: CoverMatrix) -> int:
    rows = sorted(matrix.rows)
    for size in range(0, len(rows) + 1):
        for combo in itertools.combinations(rows, size):
            if matrix.validate_solution(combo):
                return size
    raise AssertionError("infeasible instance slipped through")


@settings(max_examples=60, deadline=None)
@given(matrix=feasible_instances())
def test_bnb_matches_brute_force(matrix):
    optimum = _brute_force_optimum(matrix)
    result = branch_and_bound(matrix)
    assert result.optimal
    assert len(result.selected) == optimum
    assert matrix.validate_solution(result.selected)


@settings(max_examples=40, deadline=None)
@given(matrix=feasible_instances())
def test_ilp_matches_brute_force(matrix):
    optimum = _brute_force_optimum(matrix)
    result = ilp_cover(matrix)
    assert result.optimal
    assert len(result.selected) == optimum
    assert matrix.validate_solution(result.selected)


@settings(max_examples=60, deadline=None)
@given(matrix=feasible_instances())
def test_reduction_preserves_optimum(matrix):
    optimum = _brute_force_optimum(matrix)
    reduction = reduce_matrix(matrix)
    if reduction.closed:
        core_optimum = 0
    else:
        core_optimum = len(branch_and_bound(reduction.core).selected)
    assert len(reduction.essential_rows) + core_optimum == optimum
    # and the combined selection is a valid cover of the original
    core_pick = (
        [] if reduction.closed else branch_and_bound(reduction.core).selected
    )
    assert matrix.validate_solution(reduction.essential_rows + core_pick)


@settings(max_examples=60, deadline=None)
@given(matrix=feasible_instances())
def test_solve_cover_auto_is_optimal_and_valid(matrix):
    optimum = _brute_force_optimum(matrix)
    solution = solve_cover(matrix)
    assert solution.stats.optimal
    assert solution.n_selected == optimum
    assert matrix.validate_solution(solution.selected)


@settings(max_examples=40, deadline=None)
@given(matrix=feasible_instances(max_rows=10, max_columns=14))
def test_heuristics_always_valid_never_better_than_optimal(matrix):
    optimum = _brute_force_optimum(matrix)
    greedy = greedy_cover(matrix)
    grasp = grasp_cover(matrix, iterations=5)
    assert matrix.validate_solution(greedy)
    assert matrix.validate_solution(grasp.selected)
    assert len(greedy) >= optimum
    assert len(grasp.selected) >= optimum


@settings(max_examples=60, deadline=None)
@given(matrix=feasible_instances())
def test_essentials_never_removable(matrix):
    """Every essential row uniquely covers some column at the moment of
    selection — removing any essential from the final solution must
    break coverage."""
    solution = solve_cover(matrix)
    for essential_row in solution.essential:
        trimmed = [r for r in solution.selected if r != essential_row]
        assert not matrix.validate_solution(trimmed)
