#!/usr/bin/env python3
"""End-to-end smoke for the ``repro serve`` worker process.

Boots the real foreground server (``python -m repro serve --port 0``)
as a subprocess, then walks the lifecycle CI cares about:

1. parse the "listening on" line for the ephemeral port;
2. ``GET /healthz`` answers ``{"status": "ok"}``;
3. ``POST /diagnose`` on c17 returns a schema-stamped
   ``diagnose_response`` whose embedded payload round-trips through
   the serialize layer;
4. ``GET /metrics`` (the worker boots with ``--metrics``) returns a
   Prometheus text exposition that the strict parser accepts and that
   counts the traffic this script just sent;
5. SIGTERM drains cleanly: exit code 0 and the drain message on stdout.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py

Exits non-zero with a diagnostic on any failure.  CI's tests job runs
this on every Python version in the matrix.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def fail(message: str, server: subprocess.Popen | None = None) -> int:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    if server is not None:
        server.kill()
        out, _ = server.communicate(timeout=10)
        print(f"server output:\n{out}", file=sys.stderr)
    return 1


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--metrics"],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = server.stdout.readline()
    if "listening on http://" not in banner:
        return fail(f"unexpected banner: {banner!r}", server)
    host, _, port_text = banner.split("http://", 1)[1].split()[0].rpartition(":")

    # The client import needs src/ on the path too.
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.flow.serialize import diagnosis_result_from_dict
    from repro.obs import parse_prometheus_text
    from repro.serve import DiagnoseRequest, ServeClient

    try:
        with ServeClient(host, int(port_text)) as client:
            health = client.healthz()
            if health.get("status") != "ok":
                return fail(f"healthz said {health}", server)
            response = client.diagnose(
                DiagnoseRequest(
                    circuit="c17",
                    patterns=("10110", "01001", "11100", "00011"),
                    responses=("10", "01", "11", "00"),
                    method="effect_cause",
                )
            )
            if response.result.get("kind") != "diagnosis_result":
                return fail(f"unexpected payload kind: {response.result}", server)
            diagnosis_result_from_dict(response.result)  # schema round-trip
            exposition = client.metrics()
            try:
                parsed = parse_prometheus_text(exposition)
            except ValueError as error:
                return fail(
                    f"/metrics exposition unparseable: {error}\n{exposition}",
                    server,
                )
            diagnoses = parsed.get('repro_serve_requests_total{path="/diagnose"}')
            if not diagnoses or diagnoses < 1:
                return fail(
                    f"/metrics did not count the diagnose request: {parsed}",
                    server,
                )
    except Exception as error:  # noqa: BLE001 - smoke surface, report all
        return fail(f"request phase raised {error!r}", server)

    server.send_signal(signal.SIGTERM)
    try:
        out, _ = server.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        return fail("SIGTERM did not drain within 30s", server)
    if server.returncode != 0:
        return fail(f"exit code {server.returncode}\noutput:\n{out}")
    if "drained cleanly" not in out:
        return fail(f"drain message missing from output:\n{out}")
    print("serve smoke OK: healthz + diagnose + metrics + clean SIGTERM drain")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
