#!/usr/bin/env python3
"""Markdown link checker — thin shim over the ``docs-links`` rule.

The checker proper now lives in the static-analysis engine
(:mod:`repro.analysis.rules.docs_links`), where ``repro check`` runs it
alongside the other rules; this script keeps the historical standalone
surface — the CLI (``python tools/check_links.py README.md docs``) and
the ``check_paths`` / ``github_slug`` / ``heading_slugs`` helpers that
``tests/test_docs.py`` imports — working without ``PYTHONPATH``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.rules.docs_links import (  # noqa: E402
    check_file,
    check_paths,
    github_slug,
    heading_slugs,
    iter_links,
)

__all__ = [
    "check_file",
    "check_paths",
    "github_slug",
    "heading_slugs",
    "iter_links",
    "main",
]


def main(argv: list[str]) -> int:
    targets = argv or ["README.md", "docs"]
    errors = check_paths(targets)
    for error in errors:
        print(error, file=sys.stderr)
    checked = ", ".join(targets)
    if errors:
        print(f"{len(errors)} broken link(s) in {checked}", file=sys.stderr)
        return 1
    print(f"links OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
