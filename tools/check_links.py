#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation tree.

Scans markdown files for inline links/images (``[text](target)``) and
reference definitions (``[label]: target``), then verifies that every
*local* target exists relative to the file (external ``http(s)``/
``mailto`` links and pure in-page ``#anchors`` are skipped — CI must
not flake on the network).  For local targets carrying an anchor
(``file.md#section``) the anchor is checked against the target's ATX
headings using GitHub's slug rules (lowercase, punctuation stripped,
spaces to dashes).

Usage::

    python tools/check_links.py README.md docs

Exits non-zero listing every broken link.  ``tests/test_docs.py`` runs
this over the repository, and CI's docs job runs it standalone.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline [text](target) — target up to the first unescaped ')'; also
#: matches images (the leading '!' is irrelevant to target checking).
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference definitions: [label]: target
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for an ATX heading."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    """All anchor slugs a markdown document defines."""
    return {
        github_slug(match)
        for match in _HEADING.findall(_CODE_FENCE.sub("", markdown))
    }


def iter_links(markdown: str):
    """Every link target in a document (inline + reference definitions),
    with fenced code blocks masked out."""
    stripped = _CODE_FENCE.sub("", markdown)
    yield from _INLINE.findall(stripped)
    yield from _REFDEF.findall(stripped)


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file."""
    markdown = path.read_text(encoding="utf-8")
    errors: list[str] = []
    for target in iter_links(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        if not base:  # pure in-page anchor
            if anchor and github_slug(anchor) not in heading_slugs(markdown):
                errors.append(f"{path}: missing in-page anchor #{anchor}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
            if github_slug(anchor) not in slugs:
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def check_paths(paths: list[str]) -> list[str]:
    """Check files and (recursively) directories of markdown."""
    errors: list[str] = []
    for entry in paths:
        path = Path(entry)
        files = sorted(path.rglob("*.md")) if path.is_dir() else [path]
        for markdown_file in files:
            errors.extend(check_file(markdown_file))
    return errors


def main(argv: list[str]) -> int:
    targets = argv or ["README.md", "docs"]
    errors = check_paths(targets)
    for error in errors:
        print(error, file=sys.stderr)
    checked = ", ".join(targets)
    if errors:
        print(f"{len(errors)} broken link(s) in {checked}", file=sys.stderr)
        return 1
    print(f"links OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
