"""Setup shim for legacy editable installs (offline env without wheel).

Use ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
