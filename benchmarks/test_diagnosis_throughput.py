"""Diagnosis throughput + the subsystem's acceptance bars.

The workload is the ISSUE's measurable target: a single stuck-at fault
injected into full-size ``c880`` under a 256-pattern BIST session.
Asserted here (and mirrored in the unit tests):

* effect-cause diagnosis ranks the injected fault in the **top 3**
  candidates;
* signature-only mode localises the failing window while re-simulating
  at most **15%** of the session's patterns, with a logarithmic
  prefix-query budget.

Timings land in ``BENCH_diagnosis.json`` at the repo root — the
machine-readable perf trajectory for the diagnosis hot paths
(effect-cause trace+rank, dictionary build/lookup, bisection).
"""

from __future__ import annotations

import math
import time

import pytest

from repro.circuits import load_circuit
from repro.diagnosis import (
    FaultDictionary,
    SignatureBisector,
    SimulatedTester,
    choose_faults,
    diagnose_effect_cause,
    fault_representatives,
    make_fail_log,
    observed_fail_flags,
)
from repro.faults.collapse import collapse_faults
from repro.sim.batch import BatchFaultSimulator
from repro.sim.misr import Misr
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

#: The acceptance workload: full-size c880, one injected fault.
CIRCUIT = "c880"
N_PATTERNS = 256
SEED = 2001
MIN_WINDOW = 16

#: Signature-mode budget: at most this fraction of the session may be
#: re-simulated at per-pattern resolution.
MAX_RESIM_FRACTION = 0.15

_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_document(bench_json_writer):
    yield
    if not _RECORDS:
        return
    bench_json_writer(
        "BENCH_diagnosis.json",
        {
            "benchmark": "diagnosis",
            "circuit": CIRCUIT,
            "n_patterns": N_PATTERNS,
            "min_window": MIN_WINDOW,
            "results": dict(sorted(_RECORDS.items())),
        },
    )


@pytest.fixture(scope="module")
def workload():
    """Circuit, simulator, collapsed faults, patterns, one injected
    detectable fault and its ground-truth fail log."""
    circuit = load_circuit(CIRCUIT)
    simulator = BatchFaultSimulator(circuit)
    faults = collapse_faults(circuit)
    rng = RngStream(SEED, "diagnose", circuit.name)
    patterns = [
        BitVector.random(circuit.n_inputs, rng) for _ in range(N_PATTERNS)
    ]
    detected = simulator.detected(patterns, faults)
    detectable = [f for f, flag in zip(faults, detected) if flag]
    target = choose_faults(detectable, 1, rng.child("pick"))[0]
    log = make_fail_log(circuit, patterns, target, simulator.compiled)
    representative = fault_representatives(circuit)[target]
    return circuit, simulator, faults, patterns, target, representative, log


def test_effect_cause_ranks_injected_fault_top3(workload):
    """The headline acceptance bar: injected single fault in the top 3."""
    circuit, simulator, faults, patterns, target, representative, log = workload
    start = time.perf_counter()
    result = diagnose_effect_cause(
        circuit, patterns, log.responses, faults=faults,
        simulator=simulator, top_k=10,
    )
    seconds = time.perf_counter() - start
    rank = result.rank_of(representative)
    assert rank is not None and rank <= 3, (
        f"injected {target} ranked {rank} (top: {result.top})"
    )
    _RECORDS["effect_cause"] = {
        "seconds": round(seconds, 4),
        "rank_of_injected": rank,
        "n_failing": result.n_failing,
        "n_candidates_considered": result.n_candidates_considered,
    }


def test_signature_bisection_within_resim_budget(workload):
    """Signature-only mode: localise via MISR prefix probes and stay
    under the 15% re-simulation budget with O(log P) queries."""
    circuit, simulator, faults, patterns, target, representative, log = workload
    misr = Misr(circuit.n_outputs)
    tester = SimulatedTester(log, misr)
    bisector = SignatureBisector(
        circuit, patterns, misr, min_window=MIN_WINDOW, simulator=simulator
    )
    start = time.perf_counter()
    result = bisector.diagnose(tester, faults=faults, top_k=10)
    seconds = time.perf_counter() - start
    assert result.window is not None, "bisection failed to localise"
    fraction = result.patterns_resimulated / N_PATTERNS
    assert fraction <= MAX_RESIM_FRACTION, (
        f"re-simulated {result.patterns_resimulated}/{N_PATTERNS} patterns "
        f"({100 * fraction:.1f}%)"
    )
    query_bound = math.ceil(math.log2(N_PATTERNS / MIN_WINDOW)) + 1
    assert result.oracle_queries <= query_bound
    rank = result.rank_of(representative)
    assert rank is not None and rank <= 3
    _RECORDS["signature"] = {
        "seconds": round(seconds, 4),
        "rank_of_injected": rank,
        "window": list(result.window),
        "oracle_queries": result.oracle_queries,
        "patterns_resimulated": result.patterns_resimulated,
        "resim_fraction": round(fraction, 4),
    }


def test_dictionary_build_and_lookup(workload):
    """Dictionary mode: one simulation pass to build, pure lookup to
    diagnose — and the lookup agrees with effect-cause on the winner."""
    circuit, simulator, faults, patterns, target, representative, log = workload
    start = time.perf_counter()
    dictionary = FaultDictionary.build(circuit, patterns, faults, simulator)
    build_seconds = time.perf_counter() - start
    golden = simulator.compiled.simulate_patterns(patterns)
    flags = observed_fail_flags(golden, log.responses)
    start = time.perf_counter()
    result = dictionary.diagnose(flags, top_k=10)
    lookup_seconds = time.perf_counter() - start
    assert result.patterns_resimulated == 0
    rank = result.rank_of(representative)
    assert rank is not None and rank <= 3
    _RECORDS["dictionary"] = {
        "build_seconds": round(build_seconds, 4),
        "lookup_seconds": round(lookup_seconds, 6),
        "rank_of_injected": rank,
        "n_faults": dictionary.n_faults,
        "packed_bytes": dictionary.packed_bytes,
    }
