"""Benchmark regenerating Table 2 — the set covering algorithm's anatomy.

Measures the three covering stages separately (Detection Matrix
construction, reduction, exact solve) and checks the paper's headline:
reduction is highly effective, pruning the matrix by orders of magnitude
and leaving a core the exact solver finishes instantly (often empty —
"the reseeding solution only contains necessary triplets").
"""

from __future__ import annotations

import pytest

from repro.reseeding.initial import InitialReseedingBuilder
from repro.setcover.ilp import ilp_cover
from repro.setcover.matrix import CoverMatrix
from repro.setcover.reduce import reduce_matrix
from repro.tpg.registry import PAPER_TPGS, make_tpg


@pytest.fixture(scope="module")
def initial_reseedings(workspaces, bench_config):
    """Initial reseeding (candidate pool + Detection Matrix) per
    (circuit, TPG) pair — the input of the stages measured here."""
    pool = {}
    for circuit_name, workspace in workspaces.items():
        for tpg_name in PAPER_TPGS:
            builder = InitialReseedingBuilder(
                workspace.circuit,
                make_tpg(tpg_name, workspace.circuit.n_inputs),
                seed=bench_config.seed,
                simulator=workspace.simulator,
            )
            pool[(circuit_name, tpg_name)] = builder.build_from_atpg(
                workspace.atpg, evolution_length=bench_config.evolution_length
            )
    return pool


@pytest.mark.parametrize("circuit_name", ["c499", "s420", "s1238"])
def test_table2_detection_matrix_build(
    benchmark, workspaces, bench_config, circuit_name
):
    """Stage 1: the only fault-simulation-heavy step of the approach."""
    workspace = workspaces[circuit_name]
    builder = InitialReseedingBuilder(
        workspace.circuit,
        make_tpg("adder", workspace.circuit.n_inputs),
        seed=bench_config.seed,
        simulator=workspace.simulator,
    )

    initial = benchmark.pedantic(
        lambda: builder.build_from_atpg(
            workspace.atpg, evolution_length=bench_config.evolution_length
        ),
        rounds=1,
        iterations=1,
    )

    # Table 2's "Initial Matrix" column: #Triplets x #Faults with
    # #Triplets = ATPG test length.
    assert initial.detection_matrix.shape == (
        workspace.atpg.test_length,
        len(workspace.atpg.target_faults),
    )
    assert initial.detection_matrix.covers_all_faults()


@pytest.mark.parametrize("tpg_name", PAPER_TPGS)
@pytest.mark.parametrize("circuit_name", ["c499", "s420", "s1238"])
def test_table2_reduction(
    benchmark, initial_reseedings, circuit_name, tpg_name
):
    """Stage 2: essentiality + dominance to a fixed point."""
    initial = initial_reseedings[(circuit_name, tpg_name)]
    matrix = CoverMatrix.from_bool_array(initial.detection_matrix.matrix)

    reduction = benchmark.pedantic(
        lambda: reduce_matrix(matrix), rounds=1, iterations=1
    )

    # The paper's observation: reduction prunes the matrix dramatically.
    initial_cells = matrix.n_rows * matrix.n_columns
    core_cells = reduction.core.n_rows * reduction.core.n_columns
    assert core_cells <= initial_cells / 10 or reduction.closed
    # and never throws optimality away: essentials + core still feasible
    if not reduction.closed:
        assert reduction.core.is_feasible()


@pytest.mark.parametrize("circuit_name", ["c499", "s420", "s1238"])
def test_table2_exact_core_solve(
    benchmark, initial_reseedings, circuit_name
):
    """Stage 3: the LINGO stand-in on the reduced core."""
    initial = initial_reseedings[(circuit_name, "adder")]
    matrix = CoverMatrix.from_bool_array(initial.detection_matrix.matrix)
    reduction = reduce_matrix(matrix)

    if reduction.closed:
        pytest.skip("reduction closed the instance; nothing for the solver")

    result = benchmark.pedantic(
        lambda: ilp_cover(reduction.core), rounds=1, iterations=1
    )

    assert result.optimal
    assert reduction.core.validate_solution(result.selected)
