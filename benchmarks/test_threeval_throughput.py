"""3-valued logic simulation throughput: packed planes vs the scalar oracle.

The X-fault machinery of :mod:`repro.sim.threeval` carries every signal
as two ``uint64`` planes (value + care, 64 patterns per word) and
evaluates a whole gate group per numpy call.  This benchmark reproduces
the unknown-handling workload on ``s1238`` — an X-seeded code bank
(12.5% unknown lanes, the golden-regression fraction) — and times
``logic_sim_3v`` (plane algebra over the packed carrier) against
``logic_sim_3v_scalar`` (one Python ``eval_gate_3v_scalar`` call per
gate per pattern).

Floor: the packed path must stay **>= 3x** the scalar oracle (measured
~200x+ on the reference container; the floor is deliberately loose so
it never flakes on shared runners).  The floor is asserted by the
slow-marked test CI runs in its dedicated benchmark-floor step; every
run lands its numbers in ``BENCH_threeval.json`` (see
``docs/benchmarks.md`` for the field glossary).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import load_circuit
from repro.sim.threeval import logic_sim_3v, logic_sim_3v_scalar
from repro.utils.bitvec import X_CODE, PackedPlanes
from repro.utils.rng import RngStream

#: Circuit scale matching the other throughput benchmarks.
THROUGHPUT_SCALE = 0.2

#: Patterns per workload (two full words plus a tail word).
N_PATTERNS = 160

#: Fraction of input lanes forced to X — the golden-regression mix.
X_FRACTION = 0.125

#: Required packed-vs-scalar advantage (acceptance floor 3x; measured
#: ~200x+ on the reference container).
MIN_SPEEDUP = 3.0


def _workload():
    circuit = load_circuit("s1238", scale=THROUGHPUT_SCALE)
    rng = np.random.default_rng(
        RngStream(3, "threeval-throughput").getrandbits(64)
    )
    codes = rng.integers(
        0, 2, size=(circuit.n_inputs, N_PATTERNS), dtype=np.uint8
    )
    codes[rng.random(codes.shape) < X_FRACTION] = X_CODE
    return circuit, codes


def _lanes_per_sec(circuit, seconds: float) -> float:
    return circuit.n_outputs * N_PATTERNS / seconds


#: Per-path timing records, flushed to ``BENCH_threeval.json`` at
#: module teardown (the machine-readable perf trajectory).
_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_document(bench_json_writer):
    yield
    if not _RECORDS:
        return
    payload = {
        "benchmark": "threeval_throughput",
        "circuit": "s1238",
        "scale": THROUGHPUT_SCALE,
        "n_patterns": N_PATTERNS,
        "x_fraction": X_FRACTION,
        "workloads": dict(sorted(_RECORDS.items())),
    }
    packed = _RECORDS.get("packed")
    scalar = _RECORDS.get("scalar")
    if packed and scalar and packed["seconds"]:
        payload["speedup_packed_vs_scalar"] = round(
            scalar["seconds"] / packed["seconds"], 2
        )
    bench_json_writer("BENCH_threeval.json", payload)


def _record(key: str, circuit, benchmark, elapsed: float) -> None:
    """One workload record: pytest-benchmark's mean when it measured,
    the single-run wall time under ``--benchmark-disable``."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    seconds = stats.mean if stats is not None and stats.mean else elapsed
    _RECORDS[key] = {
        "seconds": round(seconds, 6),
        "output_lanes_per_sec": round(_lanes_per_sec(circuit, seconds)),
    }


def test_packed_threeval_throughput(benchmark):
    circuit, codes = _workload()
    planes = PackedPlanes.from_codes(codes)
    start = time.perf_counter()
    out = benchmark(logic_sim_3v, circuit, planes)
    elapsed = time.perf_counter() - start
    assert out.n_patterns == N_PATTERNS
    _record("packed", circuit, benchmark, elapsed)
    benchmark.extra_info["output_lanes_per_sec"] = _RECORDS["packed"][
        "output_lanes_per_sec"
    ]


def test_scalar_oracle_throughput(benchmark):
    """The per-pattern Python topo walk, kept measurable so the plane
    algebra's advantage lands in ``BENCH_threeval.json`` on every run."""
    circuit, codes = _workload()
    start = time.perf_counter()
    out = benchmark(logic_sim_3v_scalar, circuit, codes)
    elapsed = time.perf_counter() - start
    assert out.shape == (circuit.n_outputs, N_PATTERNS)
    _record("scalar", circuit, benchmark, elapsed)


def _best_of_two(run, *args):
    times = []
    for _ in range(2):
        start = time.perf_counter()
        result = run(*args)
        times.append(time.perf_counter() - start)
    return result, min(times)


@pytest.mark.slow
def test_packed_speedup_floor():
    """Packed 3-valued simulation must stay >= 3x the scalar oracle on
    the X-seeded s1238 workload (best-of-two timings; the reference
    container measures ~200x+).

    Marked ``slow`` like the other wall-clock ratio floors; CI runs it
    in the dedicated benchmark-floor step.
    """
    circuit, codes = _workload()
    planes = PackedPlanes.from_codes(codes)
    scalar_out, scalar_time = _best_of_two(logic_sim_3v_scalar, circuit, codes)
    packed_out, packed_time = _best_of_two(logic_sim_3v, circuit, planes)
    # Same workload, identical codes — the speedup is not bought with
    # wrong (or optimistically known) values.
    np.testing.assert_array_equal(packed_out.to_codes(), scalar_out)
    speedup = scalar_time / packed_time
    assert speedup >= MIN_SPEEDUP, (
        f"packed 3-valued simulation only {speedup:.2f}x the scalar oracle "
        f"(scalar {scalar_time:.4f}s, packed {packed_time:.4f}s)"
    )
