"""Ablation: solver choice on the reduced cores.

The paper picks LINGO (exact ILP) for the post-reduction core and notes
that "local research and meta-heuristic techniques" would serve for
larger matrices.  This ablation runs all four solvers on identical
cores: the two exact engines must agree, and the heuristics must stay
feasible and close.
"""

from __future__ import annotations

import pytest

from repro.reseeding.initial import InitialReseedingBuilder
from repro.setcover.exact import branch_and_bound
from repro.setcover.greedy import drop_redundant, greedy_cover
from repro.setcover.heuristic import grasp_cover
from repro.setcover.ilp import ilp_cover
from repro.setcover.matrix import CoverMatrix
from repro.setcover.reduce import reduce_matrix
from repro.tpg.registry import make_tpg


@pytest.fixture(scope="module")
def core_instance(workspaces, bench_config):
    """A non-trivial cyclic core from a real Detection Matrix."""
    for circuit_name in ("c499", "s1238", "s420"):
        workspace = workspaces[circuit_name]
        builder = InitialReseedingBuilder(
            workspace.circuit,
            make_tpg("adder", workspace.circuit.n_inputs),
            seed=bench_config.seed,
            simulator=workspace.simulator,
        )
        initial = builder.build_from_atpg(
            workspace.atpg, evolution_length=bench_config.evolution_length
        )
        matrix = CoverMatrix.from_bool_array(initial.detection_matrix.matrix)
        reduction = reduce_matrix(matrix)
        if not reduction.closed:
            return reduction.core
    pytest.skip("every benchmark instance closed under reduction")


def test_ablation_solver_ilp(benchmark, core_instance):
    result = benchmark.pedantic(
        lambda: ilp_cover(core_instance), rounds=1, iterations=1
    )
    assert result.optimal


def test_ablation_solver_bnb(benchmark, core_instance):
    result = benchmark.pedantic(
        lambda: branch_and_bound(core_instance), rounds=1, iterations=1
    )
    assert result.optimal
    # the two exact engines agree on the optimum
    assert len(result.selected) == len(ilp_cover(core_instance).selected)


def test_ablation_solver_grasp(benchmark, core_instance):
    result = benchmark.pedantic(
        lambda: grasp_cover(core_instance, iterations=15), rounds=1, iterations=1
    )
    optimum = len(ilp_cover(core_instance).selected)
    assert core_instance.validate_solution(result.selected)
    assert optimum <= len(result.selected) <= optimum + 2


def test_ablation_solver_greedy(benchmark, core_instance):
    selected = benchmark.pedantic(
        lambda: drop_redundant(core_instance, greedy_cover(core_instance)),
        rounds=1,
        iterations=1,
    )
    optimum = len(ilp_cover(core_instance).selected)
    assert core_instance.validate_solution(selected)
    assert optimum <= len(selected) <= 2 * optimum + 1
