"""Telemetry overhead guard: instrumentation must be free when off.

The ISSUE 8 acceptance bar: running the fault-sim workload with
telemetry disabled (the default everywhere) must cost within 2% of the
seed throughput, and attaching a live :class:`repro.obs.MetricsRegistry`
must not slow the kernels either — the simulator exports its counters
through a scrape-time collector, so the simulate/scan hot loops are
instruction-identical in both states.

Measured on the same s1238@0.2 detection-matrix workload as
``test_fault_sim_throughput.py`` (best-of-N interleaved so CPU
frequency drift hits both sides equally).  The disabled path *is* the
seed path — the hot loops bump the same plain ``int`` counters either
way — so the guard pins the live-registry run against the disabled run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import load_circuit
from repro.faults.collapse import collapse_faults
from repro.obs import MetricsRegistry
from repro.sim.batch import BatchFaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

#: Same workload shape as test_fault_sim_throughput.py so the numbers
#: are directly comparable across BENCH_*.json documents.
THROUGHPUT_SCALE = 0.2
N_ROWS = 8
PATTERNS_PER_ROW = 32

#: Interleaved repetitions per side; best-of damps scheduler noise.
N_REPS = 3

#: Acceptance: telemetry-enabled throughput within 2% of disabled
#: (plus a small absolute floor so sub-10ms runs aren't judged on
#: timer jitter alone).
MAX_OVERHEAD = 0.02
ABS_SLACK_SECONDS = 0.002

_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_document(bench_json_writer):
    yield
    if not _RECORDS:
        return
    payload = {
        "benchmark": "obs_overhead",
        "scale": THROUGHPUT_SCALE,
        "n_rows": N_ROWS,
        "patterns_per_row": PATTERNS_PER_ROW,
        "max_overhead": MAX_OVERHEAD,
        "workloads": dict(sorted(_RECORDS.items())),
    }
    bench_json_writer("BENCH_obs.json", payload)


def _workload(name: str):
    circuit = load_circuit(name, scale=THROUGHPUT_SCALE)
    faults = collapse_faults(circuit)
    rng = RngStream(3, "throughput", name)
    rows = [
        [BitVector.random(circuit.n_inputs, rng) for _ in range(PATTERNS_PER_ROW)]
        for _ in range(N_ROWS)
    ]
    return circuit, faults, rows


def _run(circuit, faults, rows, registry=None):
    simulator = BatchFaultSimulator(circuit)
    if registry is not None:
        simulator.attach_metrics(registry)
    start = time.perf_counter()
    result = list(simulator.detection_matrix_rows(rows, faults))
    return result, time.perf_counter() - start, simulator


@pytest.mark.parametrize("name", ["s1238"])
def test_disabled_telemetry_overhead_floor(name):
    """Attaching a live registry must not change fault-sim throughput
    (within 2% / 2ms, best-of-N interleaved on s1238@0.2)."""
    circuit, faults, rows = _workload(name)
    # Warm the compile caches outside the measured region.
    _run(circuit, faults, rows)

    disabled_times: list[float] = []
    enabled_times: list[float] = []
    disabled_rows = enabled_rows = None
    for _ in range(N_REPS):
        disabled_rows, seconds, _sim = _run(circuit, faults, rows)
        disabled_times.append(seconds)
        enabled_rows, seconds, sim = _run(
            circuit, faults, rows, registry=MetricsRegistry()
        )
        enabled_times.append(seconds)
    # Instrumentation must not change answers either.
    for disabled_row, enabled_row in zip(disabled_rows, enabled_rows):
        np.testing.assert_array_equal(disabled_row, enabled_row)
    assert sim.words_simulated > 0  # the counters did count

    disabled = min(disabled_times)
    enabled = min(enabled_times)
    budget = max(disabled * (1.0 + MAX_OVERHEAD), disabled + ABS_SLACK_SECONDS)
    _RECORDS[name] = {
        "disabled_seconds": round(disabled, 6),
        "enabled_seconds": round(enabled, 6),
        "overhead_pct": round(100.0 * (enabled / disabled - 1.0), 2),
        "n_faults": len(faults),
    }
    assert enabled <= budget, (
        f"telemetry-enabled fault sim {enabled:.4f}s vs disabled "
        f"{disabled:.4f}s on {name} — exceeds the {MAX_OVERHEAD:.0%} "
        f"overhead budget ({budget:.4f}s)"
    )


def test_scrape_cost_is_off_hot_path():
    """Collecting samples happens at scrape time only: a scrape after
    the run sees the final counter values without having touched the
    measured loops."""
    circuit, faults, rows = _workload("s1238")
    registry = MetricsRegistry()
    _result, _seconds, sim = _run(circuit, faults, rows, registry=registry)
    value = registry.scalar_value("repro_sim_words_simulated_total")
    assert value == float(sim.words_simulated) > 0
