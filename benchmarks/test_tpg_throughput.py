"""TPG evolution throughput: word-parallel batched vs the scalar loop.

The reseeding flow evolves a *bank* of candidate seeds for every
Detection Matrix build (one triplet per ATPG pattern, all sharing the
tuned T).  This benchmark reproduces that workload on ``s1238`` — a
bank of random seeds with per-TPG sanitised sigmas, evolved for the
shared length — and times ``evolve_batch`` (vectorized numpy bit-ops
over the whole seed axis, patterns emitted directly as
``PackedPatterns``) against ``evolve_batch_scalar`` (one Python
``next_state`` call per clock per seed, packed at the end).

Floor: the batched path must stay **>= 3x** the scalar loop for every
registered generator (measured ~8-18x on the reference container; the
adder/subtracter walks are closed-form broadcasts, the LFSRs pay ~10
numpy ops per clock for the whole bank).  The floor is asserted by the
slow-marked test CI runs in its dedicated benchmark-floor step; every
run lands its numbers in ``BENCH_tpg.json`` (see ``docs/benchmarks.md``
for the field glossary).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import load_circuit
from repro.tpg.registry import make_tpg, tpg_names
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

#: Circuit scale matching the other throughput benchmarks.
THROUGHPUT_SCALE = 0.2

#: Candidate-seed bank size (≈ an ATPG test set) and the shared
#: evolution length (the Initial Reseeding Builder's default T).
N_SEEDS = 256
LENGTH = 64

#: Required batched-vs-scalar advantage for every registered TPG
#: (acceptance floor 3x; measured ~8-18x on the reference container).
MIN_SPEEDUP = 3.0


def _workload(tpg_name: str):
    circuit = load_circuit("s1238", scale=THROUGHPUT_SCALE)
    tpg = make_tpg(tpg_name, circuit.n_inputs)
    rng = RngStream(3, "tpg-throughput", tpg_name)
    deltas = [BitVector.random(tpg.width, rng) for _ in range(N_SEEDS)]
    sigmas = [tpg.suggest_sigma(rng) for _ in range(N_SEEDS)]
    return tpg, deltas, sigmas


def _patterns_per_sec(seconds: float) -> float:
    return N_SEEDS * LENGTH / seconds


#: Per-(path, tpg) timing records, flushed to ``BENCH_tpg.json`` at
#: module teardown (the machine-readable perf trajectory).
_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_document(bench_json_writer):
    yield
    if not _RECORDS:
        return
    payload = {
        "benchmark": "tpg_throughput",
        "circuit": "s1238",
        "scale": THROUGHPUT_SCALE,
        "n_seeds": N_SEEDS,
        "length": LENGTH,
        "workloads": dict(sorted(_RECORDS.items())),
    }
    speedups = {}
    for name in tpg_names():
        batched = _RECORDS.get(f"batched/{name}")
        scalar = _RECORDS.get(f"scalar/{name}")
        if batched and scalar and batched["seconds"]:
            speedups[name] = round(scalar["seconds"] / batched["seconds"], 2)
    if speedups:
        payload["speedup_batched_vs_scalar"] = speedups
    bench_json_writer("BENCH_tpg.json", payload)


def _record(key: str, benchmark, elapsed: float) -> None:
    """One workload record: pytest-benchmark's mean when it measured,
    the single-run wall time under ``--benchmark-disable``."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    seconds = stats.mean if stats is not None and stats.mean else elapsed
    _RECORDS[key] = {
        "seconds": round(seconds, 6),
        "patterns_per_sec": round(_patterns_per_sec(seconds)),
    }


@pytest.mark.parametrize("name", sorted(tpg_names()))
def test_batched_evolution_throughput(benchmark, name):
    tpg, deltas, sigmas = _workload(name)
    start = time.perf_counter()
    packed = benchmark(tpg.evolve_batch, deltas, sigmas, LENGTH)
    elapsed = time.perf_counter() - start
    assert packed.n_patterns == N_SEEDS * LENGTH
    _record(f"batched/{name}", benchmark, elapsed)
    benchmark.extra_info["patterns_per_sec"] = _RECORDS[f"batched/{name}"][
        "patterns_per_sec"
    ]


@pytest.mark.parametrize("name", sorted(tpg_names()))
def test_scalar_baseline_throughput(benchmark, name):
    """The per-pattern Python loop, kept measurable so the batched
    path's advantage lands in ``BENCH_tpg.json`` on every run."""
    tpg, deltas, sigmas = _workload(name)
    start = time.perf_counter()
    packed = benchmark(tpg.evolve_batch_scalar, deltas, sigmas, LENGTH)
    elapsed = time.perf_counter() - start
    assert packed.n_patterns == N_SEEDS * LENGTH
    _record(f"scalar/{name}", benchmark, elapsed)


def _best_of_two(run, *args):
    times = []
    for _ in range(2):
        start = time.perf_counter()
        result = run(*args)
        times.append(time.perf_counter() - start)
    return result, min(times)


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(tpg_names()))
def test_batched_speedup_floor(name):
    """Batched evolution must stay >= 3x the scalar loop on the s1238
    reseeding workload for every registered TPG (best-of-two timings;
    the reference container measures ~8-18x).

    Marked ``slow`` like the other wall-clock ratio floors; CI runs it
    in the dedicated benchmark-floor step.
    """
    tpg, deltas, sigmas = _workload(name)
    scalar_packed, scalar_time = _best_of_two(
        tpg.evolve_batch_scalar, deltas, sigmas, LENGTH
    )
    batched_packed, batched_time = _best_of_two(
        tpg.evolve_batch, deltas, sigmas, LENGTH
    )
    # Same workload, identical bits — the speedup is not bought with
    # wrong sequences.
    np.testing.assert_array_equal(scalar_packed.words, batched_packed.words)
    speedup = scalar_time / batched_time
    assert speedup >= MIN_SPEEDUP, (
        f"batched evolution only {speedup:.2f}x the scalar loop on {name} "
        f"(scalar {scalar_time:.4f}s, batched {batched_time:.4f}s)"
    )
