"""Ablation: is the Matrix Reducer worth it?

The paper's pipeline reduces before calling LINGO.  This ablation solves
the same Detection Matrix with and without the reduction stage and
checks (a) both paths reach the same optimum — reduction is lossless —
and (b) reduction shrinks the instance the exact solver sees by orders
of magnitude, which is what makes the exact approach viable on the
larger circuits.
"""

from __future__ import annotations

import pytest

from repro.reseeding.initial import InitialReseedingBuilder
from repro.setcover.ilp import ilp_cover
from repro.setcover.matrix import CoverMatrix
from repro.setcover.reduce import reduce_matrix
from repro.tpg.registry import make_tpg


@pytest.fixture(scope="module", params=["c499", "s420", "s1238"])
def cover_instance(request, workspaces, bench_config):
    workspace = workspaces[request.param]
    builder = InitialReseedingBuilder(
        workspace.circuit,
        make_tpg("adder", workspace.circuit.n_inputs),
        seed=bench_config.seed,
        simulator=workspace.simulator,
    )
    initial = builder.build_from_atpg(
        workspace.atpg, evolution_length=bench_config.evolution_length
    )
    return CoverMatrix.from_bool_array(initial.detection_matrix.matrix)


def test_ablation_with_reduction(benchmark, cover_instance):
    def reduced_path():
        reduction = reduce_matrix(cover_instance)
        core_pick = (
            [] if reduction.closed else ilp_cover(reduction.core).selected
        )
        return reduction.essential_rows + core_pick

    selected = benchmark.pedantic(reduced_path, rounds=1, iterations=1)
    assert cover_instance.validate_solution(selected)

    # lossless: the direct ILP optimum matches
    direct = ilp_cover(cover_instance)
    assert len(direct.selected) == len(selected)

    # and the instance handed to the solver is dramatically smaller
    reduction = reduce_matrix(cover_instance)
    before = cover_instance.n_rows * cover_instance.n_columns
    after = reduction.core.n_rows * reduction.core.n_columns
    assert reduction.closed or after < before / 5


def test_ablation_without_reduction(benchmark, cover_instance):
    result = benchmark.pedantic(
        lambda: ilp_cover(cover_instance), rounds=1, iterations=1
    )
    assert result.optimal
    assert cover_instance.validate_solution(result.selected)
