"""Benchmark regenerating Figure 2 — reseedings vs test length.

Sweeps the evolution length T for the paper's subject (s1238 on an adder
accumulator) and asserts the trade-off's shape: the triplet count is
non-increasing in T with a genuine drop across the sweep, while the
global test length grows.
"""

from __future__ import annotations


from repro.flow.tradeoff import explore_tradeoff

SWEEP_LENGTHS = [2, 4, 8, 16, 32, 64, 128]


def test_figure2_tradeoff_sweep(benchmark, workspaces, bench_config):
    workspace = workspaces["s1238"]

    points = benchmark.pedantic(
        lambda: explore_tradeoff(
            workspace.circuit,
            "adder",
            SWEEP_LENGTHS,
            config=bench_config.pipeline_config(),
            atpg_result=workspace.atpg,
            simulator=workspace.simulator,
        ),
        rounds=1,
        iterations=1,
    )

    assert [p.evolution_length for p in points] == SWEEP_LENGTHS
    counts = [p.n_triplets for p in points]
    lengths = [p.test_length for p in points]
    # Figure 2's left axis: #Triplets falls monotonically with T ...
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    # ... with a real drop across the sweep (11 -> 2 in the paper) ...
    assert counts[0] > counts[-1]
    # ... while the test length trends up (paper: 5,427 -> 15,551).
    assert lengths[-1] > lengths[0]
    # Triplet counts and test lengths stay mutually consistent.
    for point in points:
        assert point.n_triplets <= point.test_length
        assert point.test_length <= point.n_triplets * point.evolution_length
