"""Serve-layer soak: batched concurrent traffic vs one-at-a-time.

The workload is the tester-farm shape the serve subsystem exists for:
one BIST pattern sequence on ``c880``, many failing dies, each die's
fail log POSTed to ``/diagnose`` with the shared content-addressed
``patterns_ref``.  Two traffic regimes over the same request set:

* **baseline** — batching disabled (zero window, ``max_batch=1``), one
  client sending one request at a time: every log pays the full
  HTTP + parse + dispatch + compute round trip serially;
* **batched** — a 25 ms window, ``max_batch=32``, 32 concurrent client
  threads: the micro-batcher fuses each wave into one vectorised
  dictionary pass.

Two tiers, like the other throughput benchmarks:

* the always-on record test runs a reduced workload on ``c499`` and
  lands both regimes' p50/p99 latency, logs/sec and batch occupancy in
  ``BENCH_serve.json`` (field glossary in ``docs/benchmarks.md``);
* the slow-marked floor test runs the full ``c880`` soak and asserts
  batched throughput stays **>= 2x** the one-at-a-time baseline
  (measured ~8-12x on the reference container), after checking every
  concurrent request succeeded and the responses match the baseline's.
"""

from __future__ import annotations

import json
import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.diagnosis import make_fail_log
from repro.faults.collapse import collapse_faults
from repro.flow.serialize import to_json
from repro.flow.session import Session
from repro.serve import (
    BackgroundServer,
    DiagnoseRequest,
    ServeClient,
    ServeConfig,
)
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

#: Record tier: small enough for the default (non-slow) suite.
RECORD_CIRCUIT = "c499"
RECORD_PATTERNS = 64
RECORD_REQUESTS = 32
RECORD_CLIENTS = 8

#: Floor tier: the acceptance workload.
FLOOR_CIRCUIT = "c880"
FLOOR_PATTERNS = 256
FLOOR_REQUESTS = 96
FLOOR_CLIENTS = 32

#: Batched regime knobs (the serve defaults, window widened a little so
#: full waves of FLOOR_CLIENTS requests fuse).
BATCH_WINDOW_MS = 25.0
MAX_BATCH = 32

#: Required batched-vs-serial advantage (measured ~8-12x on the
#: reference container; 2x is the acceptance floor).
MIN_SPEEDUP = 2.0

_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_document(bench_json_writer):
    yield
    if not _RECORDS:
        return
    # Merge with the document on disk so a floor-only run (CI's `-m
    # slow` step deselects the record test) augments the record entries
    # instead of replacing them.
    existing = Path(__file__).resolve().parents[1] / "BENCH_serve.json"
    workloads: dict[str, dict] = {}
    if existing.is_file():
        try:
            workloads.update(json.loads(existing.read_text())["workloads"])
        except (ValueError, KeyError):
            pass
    workloads.update(_RECORDS)
    payload = {
        "benchmark": "serve_throughput",
        "endpoint": "/diagnose",
        "method": "dictionary",
        "workloads": dict(sorted(workloads.items())),
    }
    floor = workloads.get(f"floor/{FLOOR_CIRCUIT}")
    if floor:
        payload["speedup_batched_vs_serial"] = floor["speedup"]
    bench_json_writer("BENCH_serve.json", payload)


def _traffic(circuit_name: str, n_patterns: int, n_requests: int):
    """One shared pattern sequence + ``n_requests`` single-fault logs."""
    session = Session.from_name(circuit_name)
    circuit = session.circuit
    faults = collapse_faults(circuit)
    rng = RngStream(3, "serve-bench", circuit.name)
    patterns = [
        BitVector.random(circuit.n_inputs, rng) for _ in range(n_patterns)
    ]
    detected = session.simulator.detected(patterns, faults)
    detectable = [f for f, flag in zip(faults, detected) if flag]
    responses = [
        tuple(
            r.to_string()
            for r in make_fail_log(
                circuit,
                patterns,
                detectable[i % len(detectable)],
                session.simulator.compiled,
            ).responses
        )
        for i in range(n_requests)
    ]
    return tuple(p.to_string() for p in patterns), responses


def _soak(
    circuit_name: str,
    patterns_text,
    responses,
    *,
    window_ms: float,
    max_batch: int,
    n_clients: int,
):
    """One traffic regime: returns (metrics dict, served result JSONs)."""
    config = ServeConfig(
        port=0,
        batch_window_ms=window_ms,
        max_batch=max_batch,
        max_queue=max(512, 4 * len(responses)),
    )
    with BackgroundServer(config) as server:
        with ServeClient(server.host, server.port) as warm:
            # Register the pattern set and warm the dictionary: the soak
            # measures traffic handling, not the cold artefact build.
            ref = warm.diagnose(
                DiagnoseRequest(
                    circuit=circuit_name,
                    patterns=patterns_text,
                    responses=responses[0],
                )
            ).patterns_ref

        def one_request(index):
            with ServeClient(server.host, server.port) as client:
                start = time.perf_counter()
                response = client.diagnose(
                    DiagnoseRequest(
                        circuit=circuit_name,
                        patterns_ref=ref,
                        responses=responses[index],
                    )
                )
                return response, (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        if n_clients == 1:
            served = [one_request(i) for i in range(len(responses))]
        else:
            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                served = list(pool.map(one_request, range(len(responses))))
        wall_s = time.perf_counter() - start
        with ServeClient(server.host, server.port) as client:
            batcher = client.stats()["batcher"]
    latencies = sorted(ms for _, ms in served)
    metrics = {
        "n_requests": len(served),
        "n_clients": n_clients,
        "window_ms": window_ms,
        "max_batch": max_batch,
        "wall_seconds": round(wall_s, 4),
        "logs_per_sec": round(len(served) / wall_s, 1),
        "p50_ms": round(statistics.median(latencies), 2),
        "p99_ms": round(latencies[int(0.99 * (len(latencies) - 1))], 2),
        "avg_batch_occupancy": batcher["avg_occupancy"],
        "max_batch_occupancy": batcher["max_occupancy"],
        "shed": batcher["shed"],
    }
    return metrics, [to_json(resp.result) for resp, _ in served]


def test_record_batched_vs_serial():
    """Always-on record tier: both regimes on the reduced c499 soak."""
    patterns_text, responses = _traffic(
        RECORD_CIRCUIT, RECORD_PATTERNS, RECORD_REQUESTS
    )
    serial, serial_results = _soak(
        RECORD_CIRCUIT, patterns_text, responses,
        window_ms=0.0, max_batch=1, n_clients=1,
    )
    batched, batched_results = _soak(
        RECORD_CIRCUIT, patterns_text, responses,
        window_ms=BATCH_WINDOW_MS, max_batch=MAX_BATCH,
        n_clients=RECORD_CLIENTS,
    )
    assert batched_results == serial_results  # same answers, any regime
    assert batched["max_batch_occupancy"] > 1
    _RECORDS[f"serial/{RECORD_CIRCUIT}"] = serial
    _RECORDS[f"batched/{RECORD_CIRCUIT}"] = batched


@pytest.mark.slow
def test_batched_throughput_floor():
    """Batched concurrent traffic must stay >= 2x the one-at-a-time
    baseline on the full c880 soak, with every request succeeding.

    Marked ``slow`` like the other wall-clock ratio floors; CI runs it
    in the dedicated benchmark-floor step.
    """
    patterns_text, responses = _traffic(
        FLOOR_CIRCUIT, FLOOR_PATTERNS, FLOOR_REQUESTS
    )
    serial, serial_results = _soak(
        FLOOR_CIRCUIT, patterns_text, responses,
        window_ms=0.0, max_batch=1, n_clients=1,
    )
    batched, batched_results = _soak(
        FLOOR_CIRCUIT, patterns_text, responses,
        window_ms=BATCH_WINDOW_MS, max_batch=MAX_BATCH,
        n_clients=FLOOR_CLIENTS,
    )
    # Every one of the >= 32 concurrent requests succeeded, nothing was
    # shed, and batching never changed an answer.
    assert len(batched_results) == FLOOR_REQUESTS
    assert batched["shed"] == 0
    assert batched_results == serial_results
    assert batched["max_batch_occupancy"] > 1
    speedup = round(batched["logs_per_sec"] / serial["logs_per_sec"], 2)
    _RECORDS[f"floor/{FLOOR_CIRCUIT}"] = {
        "serial": serial,
        "batched": batched,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    assert speedup >= MIN_SPEEDUP, (
        f"batched traffic only {speedup:.2f}x the one-at-a-time baseline "
        f"({batched['logs_per_sec']}/s vs {serial['logs_per_sec']}/s)"
    )
