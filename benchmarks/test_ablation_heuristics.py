"""Ablation: PODEM backtrace guidance — logic levels vs SCOAP.

Both heuristics are complete (they only order the search); this ablation
measures their cost on the random-resistant fault tail and checks they
classify every fault identically.
"""

from __future__ import annotations

import pytest

from repro.atpg.podem import Podem, PodemStatus
from repro.atpg.random_gen import random_phase
from repro.faults.collapse import collapse_faults
from repro.utils.rng import RngStream


@pytest.fixture(scope="module")
def hard_faults(workspaces):
    """The random-resistant tail of s1238 — the faults PODEM exists for."""
    workspace = workspaces["s1238"]
    faults = collapse_faults(workspace.circuit)
    result = random_phase(
        workspace.circuit,
        faults,
        RngStream(77, "ablation-hard"),
        max_patterns=256,
        simulator=workspace.simulator,
    )
    if not result.remaining:
        pytest.skip("no random-resistant faults at this scale")
    return workspace.circuit, result.remaining[:40]


@pytest.mark.parametrize("heuristic", ["level", "scoap"])
def test_ablation_podem_heuristic(benchmark, hard_faults, heuristic):
    circuit, faults = hard_faults
    podem = Podem(circuit, heuristic=heuristic)

    def run_tail():
        return [podem.generate(fault) for fault in faults]

    results = benchmark.pedantic(run_tail, rounds=1, iterations=1)

    statuses = [r.status for r in results]
    assert all(s is not None for s in statuses)
    # Completeness is heuristic-independent: cross-check classifications.
    other = Podem(
        circuit, heuristic="scoap" if heuristic == "level" else "level"
    )
    for fault, result in zip(faults, results):
        if result.status is PodemStatus.ABORTED:
            continue  # effort-limited outcomes may differ between orders
        counterpart = other.generate(fault)
        if counterpart.status is PodemStatus.ABORTED:
            continue
        assert counterpart.status is result.status, str(fault)
