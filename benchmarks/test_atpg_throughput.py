"""Deterministic ATPG throughput: fault-parallel batch PODEM vs the
recursive oracle.

The workload is the deterministic top-off the engine actually runs: the
collapsed stuck-at universe of ``s1238``, every fault taken through test
generation.  ``BatchPodem`` implies a whole batch of fault lanes per
sweep on the compiled plan (uint64 value/care bit-planes, one
``reduceat`` per (level, base gate type) group); the recursive
:class:`~repro.atpg.podem.Podem` pays an event-driven three-valued
resimulation per decision per fault.

Two tiers:

* always-on records at ``RECORD_SCALE`` land the per-engine timings in
  ``BENCH_atpg.json`` on every benchmark run (the machine-readable perf
  trajectory; see ``docs/benchmarks.md`` for the field glossary);
* the slow-marked floor test runs the full-size circuit and asserts the
  batch engine stays **>= 3x** the recursive one (measured ~3.2-3.7x on
  the reference container) — after first asserting the two engines'
  results are bit-identical fault for fault, so the speedup is never
  bought with a different search.

``FLOOR_BACKTRACK_LIMIT`` (applied identically to both engines) keeps
the handful of pathological s1238 faults from dominating either side's
wall clock; every fault still resolves without hitting it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.atpg.batch_podem import BatchPodem
from repro.atpg.podem import Podem
from repro.circuits import load_circuit
from repro.faults.collapse import collapse_faults

#: Scale for the always-on record benchmarks (kept small so the default
#: suite stays fast); the floor test runs the real circuit.
RECORD_SCALE = 0.25
FLOOR_SCALE = 1.0

#: Backtrack limit for the floor workload, identical for both engines.
FLOOR_BACKTRACK_LIMIT = 64

#: Batch geometry for the floor run: wider than the engine default to
#: keep lane occupancy high across the whole fault list.
FLOOR_BATCH_SIZE = 384
FLOOR_SCALAR_TAIL = 16

#: Required batch-vs-recursive advantage on the full-size workload
#: (acceptance floor 3x; measured ~3.2-3.7x on the reference container).
MIN_SPEEDUP = 3.0


def _workload(scale: float):
    circuit = load_circuit("s1238", scale=scale)
    return circuit, collapse_faults(circuit)


def _result_key(result):
    return (
        result.status,
        result.cube.assignments if result.cube is not None else None,
        result.backtracks,
        result.decisions,
    )


def _run_recursive(circuit, faults, limit):
    podem = Podem(circuit, backtrack_limit=limit)
    return {fault: _result_key(podem.generate(fault)) for fault in faults}


def _run_batch(circuit, faults, limit, **kwargs):
    podem = BatchPodem(circuit, backtrack_limit=limit, **kwargs)
    return {
        fault: _result_key(result) for fault, result in podem.stream(faults)
    }


#: Per-engine timing records, flushed to ``BENCH_atpg.json`` at module
#: teardown.
_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_document(bench_json_writer):
    yield
    if not _RECORDS:
        return
    # Merge with the document on disk so a floor-only run (CI's
    # dedicated `-m slow` step deselects the record tests) augments the
    # record-scale entries instead of replacing them.
    existing = Path(__file__).resolve().parents[1] / "BENCH_atpg.json"
    workloads: dict[str, dict] = {}
    if existing.is_file():
        try:
            workloads.update(json.loads(existing.read_text())["workloads"])
        except (ValueError, KeyError):
            pass
    workloads.update(_RECORDS)
    payload = {
        "benchmark": "atpg_throughput",
        "circuit": "s1238",
        "workloads": dict(sorted(workloads.items())),
    }
    batch = workloads.get(f"batch/scale={RECORD_SCALE}")
    recursive = workloads.get(f"recursive/scale={RECORD_SCALE}")
    if batch and recursive and batch["seconds"]:
        payload["speedup_batch_vs_recursive"] = round(
            recursive["seconds"] / batch["seconds"], 2
        )
    floor = workloads.get(f"floor/scale={FLOOR_SCALE}")
    if floor:
        payload["floor"] = floor
    bench_json_writer("BENCH_atpg.json", payload)


def _record(key: str, n_faults: int, benchmark, elapsed: float) -> None:
    """One workload record: pytest-benchmark's mean when it measured,
    the single-run wall time under ``--benchmark-disable``."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    seconds = stats.mean if stats is not None and stats.mean else elapsed
    _RECORDS[key] = {
        "seconds": round(seconds, 6),
        "n_faults": n_faults,
        "faults_per_sec": round(n_faults / seconds, 1),
    }


def test_batch_podem_throughput(benchmark):
    circuit, faults = _workload(RECORD_SCALE)
    start = time.perf_counter()
    results = benchmark(_run_batch, circuit, faults, 250)
    elapsed = time.perf_counter() - start
    assert len(results) == len(faults)
    key = f"batch/scale={RECORD_SCALE}"
    _record(key, len(faults), benchmark, elapsed)
    benchmark.extra_info["faults_per_sec"] = _RECORDS[key]["faults_per_sec"]


def test_recursive_podem_throughput(benchmark):
    """The scalar baseline, kept measurable so the batch engine's
    advantage lands in ``BENCH_atpg.json`` on every run."""
    circuit, faults = _workload(RECORD_SCALE)
    start = time.perf_counter()
    results = benchmark(_run_recursive, circuit, faults, 250)
    elapsed = time.perf_counter() - start
    assert len(results) == len(faults)
    _record(
        f"recursive/scale={RECORD_SCALE}", len(faults), benchmark, elapsed
    )


def _best_of_two(run, *args, **kwargs):
    times = []
    for _ in range(2):
        start = time.perf_counter()
        result = run(*args, **kwargs)
        times.append(time.perf_counter() - start)
    return result, min(times)


@pytest.mark.slow
def test_batch_speedup_floor():
    """Batch PODEM must stay >= 3x the recursive oracle on the full
    collapsed s1238 fault universe (best-of-two timings each side).

    Marked ``slow`` like the other wall-clock ratio floors; CI runs it
    in the dedicated benchmark-floor step.
    """
    circuit, faults = _workload(FLOOR_SCALE)
    recursive, recursive_time = _best_of_two(
        _run_recursive, circuit, faults, FLOOR_BACKTRACK_LIMIT
    )
    batch, batch_time = _best_of_two(
        _run_batch,
        circuit,
        faults,
        FLOOR_BACKTRACK_LIMIT,
        batch_size=FLOOR_BATCH_SIZE,
        scalar_tail_lanes=FLOOR_SCALAR_TAIL,
    )
    # Same workload, identical results fault for fault — the speedup is
    # not bought with a different search.
    assert batch == recursive
    speedup = recursive_time / batch_time
    _RECORDS[f"floor/scale={FLOOR_SCALE}"] = {
        "recursive_seconds": round(recursive_time, 4),
        "batch_seconds": round(batch_time, 4),
        "n_faults": len(faults),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    assert speedup >= MIN_SPEEDUP, (
        f"batch PODEM only {speedup:.2f}x the recursive oracle "
        f"(recursive {recursive_time:.2f}s, batch {batch_time:.2f}s)"
    )
