"""Ablation: covering objective — minimum triplets vs minimum test length.

The paper minimises reseeding count (the area proxy).  The weighted
covering extension can instead minimise the summed useful evolution
length of the selected triplets (a test-time proxy).  This ablation runs
both objectives on the same Detection Matrix and checks the expected
dominance relations: each objective is at least as good as the other on
its own metric.
"""

from __future__ import annotations

import pytest

from repro.reseeding.initial import InitialReseedingBuilder
from repro.setcover.matrix import CoverMatrix
from repro.setcover.solve import solve_cover
from repro.tpg.registry import make_tpg


@pytest.fixture(scope="module")
def weighted_instance(workspaces, bench_config):
    workspace = workspaces["s1238"]
    tpg = make_tpg("adder", workspace.circuit.n_inputs)
    builder = InitialReseedingBuilder(
        workspace.circuit, tpg, seed=bench_config.seed, simulator=workspace.simulator
    )
    initial = builder.build_from_atpg(
        workspace.atpg, evolution_length=bench_config.evolution_length
    )
    matrix = CoverMatrix.from_bool_array(initial.detection_matrix.matrix)
    # Row cost: the triplet's useful evolution length in isolation
    # (1 + last first-detection index over the full fault list).
    costs: dict[int, float] = {}
    for row, triplet in enumerate(initial.triplets):
        patterns = triplet.test_set(tpg)
        hits = workspace.simulator.first_detection_index(
            patterns, workspace.atpg.target_faults
        )
        useful = [i for i in hits if i is not None]
        costs[row] = float(1 + max(useful)) if useful else 1.0
    return matrix, costs


def test_ablation_objective_cardinality(benchmark, weighted_instance):
    matrix, costs = weighted_instance
    solution = benchmark.pedantic(
        lambda: solve_cover(matrix, method="ilp"), rounds=1, iterations=1
    )
    assert solution.stats.optimal
    weighted = solve_cover(matrix, method="ilp", costs=costs)
    # cardinality objective picks the fewest triplets...
    assert solution.n_selected <= weighted.n_selected


def test_ablation_objective_weighted_length(benchmark, weighted_instance):
    matrix, costs = weighted_instance
    solution = benchmark.pedantic(
        lambda: solve_cover(matrix, method="ilp", costs=costs),
        rounds=1,
        iterations=1,
    )
    assert solution.stats.optimal
    cardinality = solve_cover(matrix, method="ilp")
    cost_of = lambda sel: sum(costs[r] for r in sel)  # noqa: E731
    # ...while the weighted objective wins on summed useful length.
    assert cost_of(solution.selected) <= cost_of(cardinality.selected)
