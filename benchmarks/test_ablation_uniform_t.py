"""Ablation: per-triplet trimmed lengths vs one shared evolution length.

Paper Section 4: storing per-triplet evolution lengths minimises test
time; sharing one T ("the largest number of clock cycles among the ones
required by each triplet") saves the per-triplet length fields in ROM.
This ablation quantifies both sides of that trade on a real solution.
"""

from __future__ import annotations

import pytest

from repro.reseeding.uniform import storage_comparison, uniformize_solution
from repro.sim.fault import FaultSimulator
from repro.tpg.registry import make_tpg


@pytest.mark.parametrize("circuit_name", ["s420", "s1238"])
def test_ablation_uniform_t(benchmark, workspaces, bench_config, circuit_name):
    workspace = workspaces[circuit_name]
    pipeline_result = workspace.run_pipeline("adder", bench_config)
    trimmed = pipeline_result.trimmed

    uniform = benchmark.pedantic(
        lambda: uniformize_solution(trimmed), rounds=1, iterations=1
    )

    comparison = storage_comparison(trimmed, uniform)
    # Section 4's trade, both directions:
    assert comparison["uniform_t_bits"] <= comparison["variable_t_bits"]
    assert (
        comparison["uniform_t_test_length"] >= comparison["variable_t_test_length"]
    )
    # the shared T is exactly the slowest trimmed triplet
    assert uniform.shared_length == max(
        t.length for t in trimmed.solution.triplets
    )
    # and coverage is intact (longer evolutions only add patterns)
    tpg = make_tpg("adder", workspace.circuit.n_inputs)
    simulator = FaultSimulator(workspace.circuit)
    coverage = simulator.fault_coverage(
        uniform.solution.patterns(tpg), workspace.atpg.target_faults
    )
    assert coverage == 1.0
