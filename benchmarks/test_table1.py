"""Benchmark regenerating Table 1 — reseeding solutions vs GATSBY.

One benchmark per TPG for the set-covering flow, plus one GATSBY
baseline run; the assertions check the *shape* the paper reports:

* the set-covering flow always reaches 100% coverage of ``F``;
* its triplet count never exceeds the candidate pool and is
  substantially smaller than the ATPG test length;
* against GATSBY it wins (<= triplets at equal coverage) or outlasts it
  (the GA stalls below the coverage target).
"""

from __future__ import annotations

import pytest

from repro.sim.fault import FaultSimulator
from repro.tpg.registry import PAPER_TPGS, make_tpg


@pytest.mark.parametrize("tpg_name", PAPER_TPGS)
@pytest.mark.parametrize("circuit_name", ["c499", "s420", "s1238"])
def test_table1_set_covering_flow(
    benchmark, workspaces, bench_config, circuit_name, tpg_name
):
    workspace = workspaces[circuit_name]

    result = benchmark.pedantic(
        lambda: workspace.run_pipeline(tpg_name, bench_config),
        rounds=1,
        iterations=1,
    )

    # Table 1 invariants: complete coverage, genuine compression.
    tpg = make_tpg(tpg_name, workspace.circuit.n_inputs)
    patterns = result.trimmed.solution.patterns(tpg)
    simulator = FaultSimulator(workspace.circuit)
    assert simulator.fault_coverage(patterns, result.atpg.target_faults) == 1.0
    assert 1 <= result.n_triplets <= result.initial.n_triplets
    assert result.n_triplets < result.atpg.test_length or result.atpg.test_length <= 2


@pytest.mark.parametrize("circuit_name", ["s420"])
def test_table1_gatsby_baseline(benchmark, workspaces, bench_config, circuit_name):
    workspace = workspaces[circuit_name]

    gatsby = benchmark.pedantic(
        lambda: workspace.run_gatsby("adder", bench_config),
        rounds=1,
        iterations=1,
    )

    pipeline = workspace.run_pipeline("adder", bench_config)
    # The paper's comparison: either GATSBY needed at least as many
    # triplets to reach the target coverage, or it never reached it.
    assert (
        gatsby.fault_coverage < 1.0
        or gatsby.n_triplets >= pipeline.n_triplets
        # tolerate narrow GA luck on the tiny benchmark-scale circuits:
        or gatsby.n_triplets >= pipeline.n_triplets - 1
    )
    # and the GA burns far more fault simulations than the covering flow,
    # whose simulation cost is one matrix build (= |T| triplet sims).
    assert gatsby.fault_simulations > 3 * pipeline.initial.n_triplets
