"""Fault-simulation throughput: batched engine vs per-fault baseline.

Tracks faults x patterns per second for Detection Matrix row
construction on ``c880`` and ``s1238`` (the workload the paper's flow
spends nearly all of its time in), and asserts the batched engine's
speedup over the legacy per-fault engine stays above the 3x floor on
``s1238`` so the optimization cannot silently regress.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import load_circuit
from repro.faults.collapse import collapse_faults
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import SerialFaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

#: Circuit scale for the throughput workloads (matches conftest's
#: BENCH_SCALE so numbers are comparable across benchmark files).
THROUGHPUT_SCALE = 0.2

#: Detection-matrix workload: rows of 32-pattern test sets.
N_ROWS = 8
PATTERNS_PER_ROW = 32

#: Required batched-vs-serial advantage on s1238 (acceptance floor 3x;
#: measured ~5-6x on the reference container).
MIN_SPEEDUP = 3.0


def _workload(name: str):
    circuit = load_circuit(name, scale=THROUGHPUT_SCALE)
    faults = collapse_faults(circuit)
    rng = RngStream(3, "throughput", name)
    rows = [
        [BitVector.random(circuit.n_inputs, rng) for _ in range(PATTERNS_PER_ROW)]
        for _ in range(N_ROWS)
    ]
    return circuit, faults, rows


def _run_batched(circuit, faults, rows):
    simulator = BatchFaultSimulator(circuit)
    return list(simulator.detection_matrix_rows(rows, faults))


def _run_serial(circuit, faults, rows):
    simulator = SerialFaultSimulator(circuit)
    return [simulator.detected(patterns, faults) for patterns in rows]


def _fp_per_sec(n_faults: int, seconds: float) -> float:
    return n_faults * PATTERNS_PER_ROW * N_ROWS / seconds


#: Per-workload timing records, flushed to ``BENCH_fault_sim.json`` at
#: module teardown (the machine-readable perf trajectory).
_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_document(bench_json_writer):
    yield
    if not _RECORDS:
        return
    payload = {
        "benchmark": "fault_sim_throughput",
        "scale": THROUGHPUT_SCALE,
        "n_rows": N_ROWS,
        "patterns_per_row": PATTERNS_PER_ROW,
        "workloads": dict(sorted(_RECORDS.items())),
    }
    speedups = {}
    for name in ("c880", "s1238"):
        batched = _RECORDS.get(f"batched/{name}")
        serial = _RECORDS.get(f"serial/{name}")
        if batched and serial and batched["seconds"]:
            speedups[name] = round(serial["seconds"] / batched["seconds"], 2)
    if speedups:
        payload["speedup_batched_vs_serial"] = speedups
    bench_json_writer("BENCH_fault_sim.json", payload)


def _record(key: str, benchmark, elapsed: float, n_faults: int) -> None:
    """One workload record: pytest-benchmark's mean when it measured,
    the single-run wall time under ``--benchmark-disable``."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    seconds = stats.mean if stats is not None and stats.mean else elapsed
    _RECORDS[key] = {
        "seconds": round(seconds, 6),
        "n_faults": n_faults,
        "faults_x_patterns_per_sec": round(_fp_per_sec(n_faults, seconds)),
    }


@pytest.mark.parametrize("name", ["c880", "s1238"])
def test_batched_matrix_rows_throughput(benchmark, name):
    circuit, faults, rows = _workload(name)
    start = time.perf_counter()
    result = benchmark(_run_batched, circuit, faults, rows)
    elapsed = time.perf_counter() - start
    assert len(result) == N_ROWS
    _record(f"batched/{name}", benchmark, elapsed, len(faults))
    benchmark.extra_info["faults_x_patterns_per_sec"] = _RECORDS[
        f"batched/{name}"
    ]["faults_x_patterns_per_sec"]
    benchmark.extra_info["n_faults"] = len(faults)


@pytest.mark.parametrize("name", ["c880", "s1238"])
def test_serial_baseline_throughput(benchmark, name):
    circuit, faults, rows = _workload(name)
    start = time.perf_counter()
    result = benchmark(_run_serial, circuit, faults, rows)
    elapsed = time.perf_counter() - start
    assert len(result) == N_ROWS
    _record(f"serial/{name}", benchmark, elapsed, len(faults))
    benchmark.extra_info["n_faults"] = len(faults)


@pytest.mark.slow
def test_batched_speedup_floor_s1238():
    """Batched detection-matrix construction must stay >= 3x the
    per-fault baseline on s1238 (best-of-two timing to damp noise).

    Marked ``slow``: wall-clock ratio assertions belong in deliberate
    benchmark runs (``-m "slow or not slow"``), not in tier-1 or CI
    smoke on contended shared runners.
    """
    circuit, faults, rows = _workload("s1238")

    def best_of_two(run):
        times = []
        for _ in range(2):
            start = time.perf_counter()
            result = run(circuit, faults, rows)
            times.append(time.perf_counter() - start)
        return result, min(times)

    serial_rows, serial_time = best_of_two(_run_serial)
    batched_rows, batched_time = best_of_two(_run_batched)
    # Same workload, identical results — the speedup is not bought with
    # wrong answers.
    for serial_row, batched_row in zip(serial_rows, batched_rows):
        np.testing.assert_array_equal(np.asarray(serial_row), batched_row)
    speedup = serial_time / batched_time
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x the per-fault baseline "
        f"(serial {serial_time:.3f}s, batched {batched_time:.3f}s)"
    )
