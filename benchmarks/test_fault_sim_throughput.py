"""Fault-simulation throughput: batched engine vs per-fault baseline.

Tracks faults x patterns per second for Detection Matrix row
construction on ``c880`` and ``s1238`` (the workload the paper's flow
spends nearly all of its time in), and asserts two floors so the
optimizations cannot silently regress:

* the batched engine stays >= 3x the legacy per-fault engine on
  ``s1238`` (the PR 1 acceptance bar), and
* the chunked row path (rows packed word-aligned and simulated
  together) stays >= 1.5x the PR 1 row-at-a-time batched path
  (``row_chunk_words=1``, one fault-free pass and one ``detect_words``
  per row) on *both* workloads — measured in-process on the same
  machine, so the floor is hardware-independent.  For trajectory
  context, the PR 1 reference container recorded 0.0429s (c880) /
  0.0635s (s1238) for this workload; the chunked engine measures
  ~4.5-5.5x faster on the same container.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import load_circuit
from repro.faults.collapse import collapse_faults
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import SerialFaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

#: Circuit scale for the throughput workloads (matches conftest's
#: BENCH_SCALE so numbers are comparable across benchmark files).
THROUGHPUT_SCALE = 0.2

#: Detection-matrix workload: rows of 32-pattern test sets.
N_ROWS = 8
PATTERNS_PER_ROW = 32

#: Required batched-vs-serial advantage on s1238 (acceptance floor 3x;
#: measured ~5-6x on the reference container).
MIN_SPEEDUP = 3.0

#: Required chunked-vs-row-at-a-time advantage (acceptance floor 1.5x
#: over the PR 1 batched path; measured ~4-5x on the reference
#: container for both c880@0.2 and s1238@0.2).
MIN_CHUNKED_SPEEDUP = 1.5


def _workload(name: str):
    circuit = load_circuit(name, scale=THROUGHPUT_SCALE)
    faults = collapse_faults(circuit)
    rng = RngStream(3, "throughput", name)
    rows = [
        [BitVector.random(circuit.n_inputs, rng) for _ in range(PATTERNS_PER_ROW)]
        for _ in range(N_ROWS)
    ]
    return circuit, faults, rows


def _run_batched(circuit, faults, rows):
    simulator = BatchFaultSimulator(circuit)
    return list(simulator.detection_matrix_rows(rows, faults))


def _run_row_at_a_time(circuit, faults, rows):
    """The PR 1 batched path: one fault-free simulation and one
    ``detect_words`` per plan per *row* (``row_chunk_words=1`` packs
    every row into its own chunk, which is exactly that schedule)."""
    simulator = BatchFaultSimulator(circuit)
    return list(
        simulator.detection_matrix_rows(rows, faults, row_chunk_words=1)
    )


def _run_serial(circuit, faults, rows):
    simulator = SerialFaultSimulator(circuit)
    return [simulator.detected(patterns, faults) for patterns in rows]


def _fp_per_sec(n_faults: int, seconds: float) -> float:
    return n_faults * PATTERNS_PER_ROW * N_ROWS / seconds


#: Per-workload timing records, flushed to ``BENCH_fault_sim.json`` at
#: module teardown (the machine-readable perf trajectory).
_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_document(bench_json_writer):
    yield
    if not _RECORDS:
        return
    payload = {
        "benchmark": "fault_sim_throughput",
        "scale": THROUGHPUT_SCALE,
        "n_rows": N_ROWS,
        "patterns_per_row": PATTERNS_PER_ROW,
        "workloads": dict(sorted(_RECORDS.items())),
    }
    for label, reference in (
        ("speedup_batched_vs_serial", "serial"),
        ("speedup_chunked_vs_row_at_a_time", "row_at_a_time"),
    ):
        speedups = {}
        for name in ("c880", "s1238"):
            batched = _RECORDS.get(f"batched/{name}")
            baseline = _RECORDS.get(f"{reference}/{name}")
            if batched and baseline and batched["seconds"]:
                speedups[name] = round(
                    baseline["seconds"] / batched["seconds"], 2
                )
        if speedups:
            payload[label] = speedups
    bench_json_writer("BENCH_fault_sim.json", payload)


def _record(key: str, benchmark, elapsed: float, n_faults: int) -> None:
    """One workload record: pytest-benchmark's mean when it measured,
    the single-run wall time under ``--benchmark-disable``."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    seconds = stats.mean if stats is not None and stats.mean else elapsed
    _RECORDS[key] = {
        "seconds": round(seconds, 6),
        "n_faults": n_faults,
        "faults_x_patterns_per_sec": round(_fp_per_sec(n_faults, seconds)),
    }


@pytest.mark.parametrize("name", ["c880", "s1238"])
def test_batched_matrix_rows_throughput(benchmark, name):
    circuit, faults, rows = _workload(name)
    start = time.perf_counter()
    result = benchmark(_run_batched, circuit, faults, rows)
    elapsed = time.perf_counter() - start
    assert len(result) == N_ROWS
    _record(f"batched/{name}", benchmark, elapsed, len(faults))
    benchmark.extra_info["faults_x_patterns_per_sec"] = _RECORDS[
        f"batched/{name}"
    ]["faults_x_patterns_per_sec"]
    benchmark.extra_info["n_faults"] = len(faults)


@pytest.mark.parametrize("name", ["c880", "s1238"])
def test_row_at_a_time_baseline_throughput(benchmark, name):
    """The PR 1 batched schedule, kept measurable so the chunked path's
    advantage lands in ``BENCH_fault_sim.json`` on every run."""
    circuit, faults, rows = _workload(name)
    start = time.perf_counter()
    result = benchmark(_run_row_at_a_time, circuit, faults, rows)
    elapsed = time.perf_counter() - start
    assert len(result) == N_ROWS
    _record(f"row_at_a_time/{name}", benchmark, elapsed, len(faults))
    benchmark.extra_info["n_faults"] = len(faults)


@pytest.mark.parametrize("name", ["c880", "s1238"])
def test_serial_baseline_throughput(benchmark, name):
    circuit, faults, rows = _workload(name)
    start = time.perf_counter()
    result = benchmark(_run_serial, circuit, faults, rows)
    elapsed = time.perf_counter() - start
    assert len(result) == N_ROWS
    _record(f"serial/{name}", benchmark, elapsed, len(faults))
    benchmark.extra_info["n_faults"] = len(faults)


def _best_of_two(run, circuit, faults, rows):
    times = []
    for _ in range(2):
        start = time.perf_counter()
        result = run(circuit, faults, rows)
        times.append(time.perf_counter() - start)
    return result, min(times)


@pytest.mark.slow
@pytest.mark.parametrize("name", ["c880", "s1238"])
def test_chunked_speedup_floor(name):
    """The chunked row path must stay >= 1.5x the PR 1 row-at-a-time
    batched path on c880@0.2 and s1238@0.2 (best-of-two timings; the
    reference container measures ~4-5x).

    Marked ``slow`` like the other wall-clock ratio floor; CI runs it
    in the dedicated benchmark-floor step.
    """
    circuit, faults, rows = _workload(name)
    baseline_rows, baseline_time = _best_of_two(
        _run_row_at_a_time, circuit, faults, rows
    )
    chunked_rows, chunked_time = _best_of_two(_run_batched, circuit, faults, rows)
    # Same workload, identical results — the speedup is not bought with
    # wrong answers.
    for baseline_row, chunked_row in zip(baseline_rows, chunked_rows):
        np.testing.assert_array_equal(np.asarray(baseline_row), chunked_row)
    speedup = baseline_time / chunked_time
    assert speedup >= MIN_CHUNKED_SPEEDUP, (
        f"chunked rows only {speedup:.2f}x the row-at-a-time path on {name} "
        f"(row-at-a-time {baseline_time:.3f}s, chunked {chunked_time:.3f}s)"
    )


@pytest.mark.slow
def test_batched_speedup_floor_s1238():
    """Batched detection-matrix construction must stay >= 3x the
    per-fault baseline on s1238 (best-of-two timing to damp noise).

    Marked ``slow``: wall-clock ratio assertions belong in deliberate
    benchmark runs (``-m "slow or not slow"``), not in tier-1 or CI
    smoke on contended shared runners.
    """
    circuit, faults, rows = _workload("s1238")

    def best_of_two(run):
        times = []
        for _ in range(2):
            start = time.perf_counter()
            result = run(circuit, faults, rows)
            times.append(time.perf_counter() - start)
        return result, min(times)

    serial_rows, serial_time = best_of_two(_run_serial)
    batched_rows, batched_time = best_of_two(_run_batched)
    # Same workload, identical results — the speedup is not bought with
    # wrong answers.
    for serial_row, batched_row in zip(serial_rows, batched_rows):
        np.testing.assert_array_equal(np.asarray(serial_row), batched_row)
    speedup = serial_time / batched_time
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x the per-fault baseline "
        f"(serial {serial_time:.3f}s, batched {batched_time:.3f}s)"
    )
