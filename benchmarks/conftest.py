"""Shared benchmark fixtures.

Benchmarks run the same experiment code as ``repro.experiments`` at a
reduced circuit scale (``BENCH_SCALE``) so the whole harness finishes in
minutes on a laptop.  The ATPG result and compiled fault simulator for
each circuit are cached per session — they are circuit-level artefacts,
not part of the measured covering flow.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.common import CircuitWorkspace, ExperimentConfig

#: Repository root — machine-readable benchmark documents land here.
REPO_ROOT = Path(__file__).resolve().parents[1]


def write_bench_json(filename: str, payload: dict) -> None:
    """Write one ``BENCH_*.json`` perf document at the repo root.

    The files are the machine-readable perf trajectory: every benchmark
    run refreshes them, so tooling (and future PRs) can diff throughput
    without scraping pytest output.
    """
    document = {"schema": 1, **payload}
    (REPO_ROOT / filename).write_text(json.dumps(document, indent=2) + "\n")


@pytest.fixture(scope="session")
def bench_json_writer():
    """The ``BENCH_*.json`` writer, as a fixture so benchmark modules
    need no import path to the conftest."""
    return write_bench_json

#: Circuit size factor for benchmarks (1.0 = real ISCAS sizes).
BENCH_SCALE = 0.2

#: Circuits benchmarked (one ISCAS'85 member, one small and one larger
#: full-scan ISCAS'89 member — enough to show every Table-2 regime).
BENCH_CIRCUITS = ("c499", "s420", "s1238")

#: Evolution length used by the benchmark pipelines.
BENCH_EVOLUTION_LENGTH = 32


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration all benchmarks share."""
    return ExperimentConfig(
        circuits=BENCH_CIRCUITS,
        scale=BENCH_SCALE,
        seed=2001,
        evolution_length=BENCH_EVOLUTION_LENGTH,
        max_random_patterns=512,
    )


@pytest.fixture(scope="session")
def workspaces(bench_config) -> dict[str, CircuitWorkspace]:
    """ATPG + simulator per circuit, computed once per session."""
    return {
        name: CircuitWorkspace.prepare(name, bench_config)
        for name in bench_config.circuits
    }
