"""Shared benchmark fixtures.

Benchmarks run the same experiment code as ``repro.experiments`` at a
reduced circuit scale (``BENCH_SCALE``) so the whole harness finishes in
minutes on a laptop.  The ATPG result and compiled fault simulator for
each circuit are cached per session — they are circuit-level artefacts,
not part of the measured covering flow.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.common import CircuitWorkspace, ExperimentConfig

#: Repository root — machine-readable benchmark documents land here.
REPO_ROOT = Path(__file__).resolve().parents[1]


#: Numeric leaves may drift by this factor between runs without the
#: committed ``BENCH_*.json`` being rewritten — machine-to-machine
#: timing noise easily spans 1.5x, real regressions/speedups (and the
#: 3x-class floors) do not hide inside it.
MEANINGFUL_RATIO = 1.5


def _is_timing_noise(old, new, ratio: float = MEANINGFUL_RATIO) -> bool:
    """True when ``new`` differs from ``old`` only in numeric leaves
    within ``ratio`` — i.e. the same document modulo timing noise.

    Structure (keys, list lengths, value kinds) and every non-numeric
    leaf must match exactly; a numeric leaf passes when the two values
    are within a factor of ``ratio`` of each other (zero only matches
    zero, signs must agree).
    """
    if isinstance(old, dict) and isinstance(new, dict):
        return old.keys() == new.keys() and all(
            _is_timing_noise(old[k], new[k], ratio) for k in old
        )
    if isinstance(old, list) and isinstance(new, list):
        return len(old) == len(new) and all(
            _is_timing_noise(a, b, ratio) for a, b in zip(old, new)
        )
    if isinstance(old, bool) or isinstance(new, bool):
        return old is new
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if old == new:
            return True
        if old == 0 or new == 0 or (old < 0) != (new < 0):
            return False
        big, small = max(abs(old), abs(new)), min(abs(old), abs(new))
        return big / small <= ratio
    return old == new


def write_bench_json(filename: str, payload: dict) -> None:
    """Write one ``BENCH_*.json`` perf document at the repo root.

    The files are the machine-readable perf trajectory, and they are
    **committed** — so a run only rewrites one when the delta is
    meaningful (new structure, new fields, or a numeric change beyond
    :data:`MEANINGFUL_RATIO`).  Re-running benchmarks on an unchanged
    tree leaves the working copy clean instead of churning every
    ``BENCH_*.json`` with timing noise.
    """
    document = {"schema": 1, **payload}
    path = REPO_ROOT / filename
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = None
        if previous is not None and _is_timing_noise(previous, document):
            return
    path.write_text(json.dumps(document, indent=2) + "\n")


@pytest.fixture(scope="session")
def bench_json_writer():
    """The ``BENCH_*.json`` writer, as a fixture so benchmark modules
    need no import path to the conftest."""
    return write_bench_json

#: Circuit size factor for benchmarks (1.0 = real ISCAS sizes).
BENCH_SCALE = 0.2

#: Circuits benchmarked (one ISCAS'85 member, one small and one larger
#: full-scan ISCAS'89 member — enough to show every Table-2 regime).
BENCH_CIRCUITS = ("c499", "s420", "s1238")

#: Evolution length used by the benchmark pipelines.
BENCH_EVOLUTION_LENGTH = 32


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration all benchmarks share."""
    return ExperimentConfig(
        circuits=BENCH_CIRCUITS,
        scale=BENCH_SCALE,
        seed=2001,
        evolution_length=BENCH_EVOLUTION_LENGTH,
        max_random_patterns=512,
    )


@pytest.fixture(scope="session")
def workspaces(bench_config) -> dict[str, CircuitWorkspace]:
    """ATPG + simulator per circuit, computed once per session."""
    return {
        name: CircuitWorkspace.prepare(name, bench_config)
        for name in bench_config.circuits
    }
